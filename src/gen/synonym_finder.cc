#include "src/gen/synonym_finder.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/regex/regex.h"
#include "src/rules/rule.h"

namespace rulekit::gen {

namespace {

constexpr char kSynToken[] = "\\syn";

struct TemplateParts {
  std::string prefix;                // pattern before '('
  std::string suffix;                // pattern after ')'
  std::vector<std::string> branches; // disjunction branches minus \syn
};

Result<TemplateParts> ParseTemplate(std::string_view pattern) {
  size_t syn = pattern.find(kSynToken);
  if (syn == std::string_view::npos) {
    return Status::InvalidArgument("template must contain \\syn");
  }
  if (pattern.find(kSynToken, syn + 1) != std::string_view::npos) {
    return Status::InvalidArgument(
        "template must contain exactly one \\syn (the tool expands one "
        "disjunction at a time)");
  }
  // Find the enclosing parenthesized disjunction.
  int depth = 0;
  size_t open = std::string_view::npos;
  for (size_t i = syn; i-- > 0;) {
    if (pattern[i] == ')') ++depth;
    if (pattern[i] == '(') {
      if (depth == 0) {
        open = i;
        break;
      }
      --depth;
    }
  }
  if (open == std::string_view::npos) {
    return Status::InvalidArgument("\\syn must appear inside (...)");
  }
  depth = 0;
  size_t close = std::string_view::npos;
  for (size_t i = open + 1; i < pattern.size(); ++i) {
    if (pattern[i] == '(') ++depth;
    if (pattern[i] == ')') {
      if (depth == 0) {
        close = i;
        break;
      }
      --depth;
    }
  }
  if (close == std::string_view::npos) {
    return Status::InvalidArgument("unterminated group around \\syn");
  }

  TemplateParts parts;
  parts.prefix = std::string(pattern.substr(0, open));
  parts.suffix = std::string(pattern.substr(close + 1));
  // Split the group content on top-level '|'.
  std::string_view content = pattern.substr(open + 1, close - open - 1);
  size_t start = 0;
  depth = 0;
  for (size_t i = 0; i <= content.size(); ++i) {
    if (i < content.size() && content[i] == '(') ++depth;
    if (i < content.size() && content[i] == ')') --depth;
    if (i == content.size() || (content[i] == '|' && depth == 0)) {
      std::string branch(Trim(content.substr(start, i - start)));
      if (branch != kSynToken && !branch.empty()) {
        parts.branches.push_back(std::move(branch));
      }
      start = i + 1;
    }
  }
  return parts;
}

// Number of capturing groups opened in a pattern fragment (unescaped '('
// not followed by "?:").
size_t CountCaptures(std::string_view fragment) {
  size_t count = 0;
  for (size_t i = 0; i < fragment.size(); ++i) {
    if (fragment[i] == '\\') {
      ++i;
      continue;
    }
    if (fragment[i] == '(' &&
        fragment.substr(i + 1, 2) != std::string_view("?:")) {
      ++count;
    }
  }
  return count;
}

std::string CollapseSpaces(std::string_view s) {
  std::string out;
  bool in_space = false;
  for (char c : Trim(s)) {
    if (c == ' ' || c == '\t') {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
  }
  return out;
}

// Context tokens: the last/first `window` words of the text before/after a
// span.
std::vector<std::string> PrefixContext(const text::Tokenizer& tokenizer,
                                       std::string_view text, size_t window) {
  auto tokens = tokenizer.Tokenize(text);
  if (tokens.size() > window) {
    tokens.erase(tokens.begin(),
                 tokens.end() - static_cast<ptrdiff_t>(window));
  }
  return tokens;
}

std::vector<std::string> SuffixContext(const text::Tokenizer& tokenizer,
                                       std::string_view text, size_t window) {
  auto tokens = tokenizer.Tokenize(text);
  if (tokens.size() > window) tokens.resize(window);
  return tokens;
}

}  // namespace

Result<SynonymFinder> SynonymFinder::Create(
    std::string_view template_pattern, const std::vector<std::string>& titles,
    SynonymFinderConfig config) {
  std::string normalized = rules::Rule::NormalizePattern(template_pattern);
  auto parts = ParseTemplate(normalized);
  if (!parts.ok()) return parts.status();
  if (parts->branches.empty()) {
    return Status::InvalidArgument(
        "the \\syn disjunction needs at least one golden synonym");
  }

  SynonymFinder finder;
  finder.config_ = config;
  finder.template_prefix_ = parts->prefix;
  finder.template_suffix_ = parts->suffix;
  finder.golden_ = parts->branches;

  // The capture of interest is the group we insert at the disjunction.
  const size_t group_index = CountCaptures(parts->prefix);

  // Golden regex: the original disjunction, captured.
  std::string golden_pattern = parts->prefix + "(" +
                               Join(parts->branches, "|") + ")" +
                               parts->suffix;
  auto golden_re = regex::Regex::CompileCaseFolded(golden_pattern);
  if (!golden_re.ok()) return golden_re.status();

  // Generalized regexes: (\w+), (\w+\s+\w+), ... in place of the
  // disjunction.
  std::vector<regex::Regex> generalized;
  for (size_t words = 1; words <= config.max_synonym_words; ++words) {
    std::string span = "\\w+";
    for (size_t w = 1; w < words; ++w) span += "\\s+\\w+";
    auto re = regex::Regex::CompileCaseFolded(parts->prefix + "(" + span +
                                              ")" + parts->suffix);
    if (!re.ok()) return re.status();
    generalized.push_back(std::move(re).value());
  }

  // Per-branch exact matchers, to drop candidates that are really golden.
  std::vector<regex::Regex> branch_matchers;
  for (const auto& b : parts->branches) {
    auto re = regex::Regex::CompileCaseFolded(b);
    if (!re.ok()) return re.status();
    branch_matchers.push_back(std::move(re).value());
  }

  // Scan the corpus.
  text::Tokenizer tokenizer;
  text::Vocabulary vocab;
  text::TfIdfModel prefix_model, suffix_model;

  struct RawMatch {
    std::string phrase;  // empty for golden matches
    std::vector<text::TokenId> prefix_ids;
    std::vector<text::TokenId> suffix_ids;
    size_t title_index;
  };
  std::vector<RawMatch> golden_matches;
  std::vector<RawMatch> candidate_matches;

  auto record_match = [&](const regex::Match& m, const std::string& title,
                          size_t title_index, bool is_golden) {
    if (group_index >= m.groups.size() ||
        !m.groups[group_index].valid()) {
      return;
    }
    const regex::Span& span = m.groups[group_index];
    RawMatch raw;
    raw.title_index = title_index;
    if (!is_golden) {
      raw.phrase = CollapseSpaces(
          std::string_view(title).substr(span.begin, span.length()));
      if (raw.phrase.empty()) return;
    }
    raw.prefix_ids = vocab.InternAll(PrefixContext(
        tokenizer, std::string_view(title).substr(0, span.begin),
        config.context_window));
    raw.suffix_ids = vocab.InternAll(SuffixContext(
        tokenizer, std::string_view(title).substr(span.end),
        config.context_window));
    prefix_model.AddDocument(raw.prefix_ids);
    suffix_model.AddDocument(raw.suffix_ids);
    (is_golden ? golden_matches : candidate_matches)
        .push_back(std::move(raw));
  };

  for (size_t ti = 0; ti < titles.size(); ++ti) {
    const std::string lowered = ToLowerAscii(titles[ti]);
    for (const auto& m : golden_re->FindAll(lowered)) {
      record_match(m, lowered, ti, /*is_golden=*/true);
    }
    for (const auto& re : generalized) {
      for (const auto& m : re.FindAll(lowered)) {
        record_match(m, lowered, ti, /*is_golden=*/false);
      }
    }
  }

  // Golden centroids (means of normalized context vectors).
  auto add_mean = [&](const std::vector<RawMatch>& matches, bool prefix,
                      text::SparseVector& out) {
    size_t n = 0;
    for (const auto& m : matches) {
      text::SparseVector v =
          prefix ? prefix_model.VectorizeNormalized(m.prefix_ids)
                 : suffix_model.VectorizeNormalized(m.suffix_ids);
      out.AddScaled(v, 1.0);
      ++n;
    }
    if (n > 0) out.Scale(1.0 / static_cast<double>(n));
  };
  add_mean(golden_matches, /*prefix=*/true, finder.golden_prefix_);
  add_mean(golden_matches, /*prefix=*/false, finder.golden_suffix_);

  // Group candidate matches by phrase.
  std::unordered_map<std::string, size_t> phrase_index;
  for (const auto& m : candidate_matches) {
    // Skip phrases that are really golden synonyms.
    bool is_golden_phrase = false;
    for (const auto& bm : branch_matchers) {
      if (bm.FullMatch(m.phrase)) {
        is_golden_phrase = true;
        break;
      }
    }
    if (is_golden_phrase) continue;

    auto [it, inserted] =
        phrase_index.emplace(m.phrase, finder.candidates_.size());
    if (inserted) {
      Candidate c;
      c.phrase = m.phrase;
      finder.candidates_.push_back(std::move(c));
    }
    Candidate& c = finder.candidates_[it->second];
    c.mean_prefix.AddScaled(prefix_model.VectorizeNormalized(m.prefix_ids),
                            1.0);
    c.mean_suffix.AddScaled(suffix_model.VectorizeNormalized(m.suffix_ids),
                            1.0);
    ++c.num_matches;
    if (c.samples.size() < 3) c.samples.push_back(titles[m.title_index]);
  }
  // Finish the means and filter rare candidates.
  std::vector<Candidate> kept;
  for (auto& c : finder.candidates_) {
    if (c.num_matches < config.min_candidate_matches) continue;
    c.mean_prefix.Scale(1.0 / static_cast<double>(c.num_matches));
    c.mean_suffix.Scale(1.0 / static_cast<double>(c.num_matches));
    kept.push_back(std::move(c));
  }
  finder.candidates_ = std::move(kept);

  finder.ScoreAll();
  finder.SortUnreviewed();
  return finder;
}

void SynonymFinder::ScoreAll() {
  for (auto& c : candidates_) {
    if (c.reviewed) continue;
    c.score = config_.prefix_weight * c.mean_prefix.Cosine(golden_prefix_) +
              config_.suffix_weight * c.mean_suffix.Cosine(golden_suffix_);
  }
}

void SynonymFinder::SortUnreviewed() {
  std::stable_sort(candidates_.begin(), candidates_.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.reviewed != b.reviewed) return !a.reviewed;
                     if (a.score != b.score) return a.score > b.score;
                     if (a.num_matches != b.num_matches) {
                       return a.num_matches > b.num_matches;
                     }
                     return a.phrase < b.phrase;
                   });
}

std::vector<SynonymCandidate> SynonymFinder::NextBatch() {
  current_batch_.clear();
  std::vector<SynonymCandidate> out;
  for (size_t i = 0; i < candidates_.size() &&
                     out.size() < config_.batch_size;
       ++i) {
    if (candidates_[i].reviewed) continue;
    current_batch_.push_back(i);
    out.push_back({candidates_[i].phrase, candidates_[i].score,
                   candidates_[i].num_matches, candidates_[i].samples});
  }
  if (!out.empty()) ++iterations_;
  return out;
}

void SynonymFinder::ProvideFeedback(
    const std::vector<std::string>& accepted,
    const std::vector<std::string>& rejected) {
  std::vector<const Candidate*> accepted_cands, rejected_cands;
  auto mark = [&](const std::string& phrase, bool is_accept) {
    for (auto& c : candidates_) {
      if (c.phrase != phrase) continue;
      if (!c.reviewed) {
        c.reviewed = true;
        ++reviewed_;
      }
      (is_accept ? accepted_cands : rejected_cands).push_back(&c);
      return;
    }
  };
  for (const auto& p : accepted) {
    mark(p, true);
    accepted_.push_back(p);
  }
  for (const auto& p : rejected) mark(p, false);

  if (config_.use_feedback &&
      (!accepted_cands.empty() || !rejected_cands.empty())) {
    // Rocchio: pull the golden centroids toward accepted contexts, away
    // from rejected ones.
    auto update = [&](text::SparseVector& centroid, bool prefix) {
      centroid.Scale(config_.rocchio_alpha);
      if (!accepted_cands.empty()) {
        double beta = config_.rocchio_beta /
                      static_cast<double>(accepted_cands.size());
        for (const Candidate* c : accepted_cands) {
          centroid.AddScaled(prefix ? c->mean_prefix : c->mean_suffix, beta);
        }
      }
      if (!rejected_cands.empty()) {
        double gamma = config_.rocchio_gamma /
                       static_cast<double>(rejected_cands.size());
        for (const Candidate* c : rejected_cands) {
          centroid.AddScaled(prefix ? c->mean_prefix : c->mean_suffix,
                             -gamma);
        }
      }
      centroid.ClampNonNegative();
    };
    update(golden_prefix_, /*prefix=*/true);
    update(golden_suffix_, /*prefix=*/false);
    ScoreAll();
  }
  SortUnreviewed();
}

std::string SynonymFinder::ExpandedPattern() const {
  std::vector<std::string> branches = golden_;
  branches.insert(branches.end(), accepted_.begin(), accepted_.end());
  return template_prefix_ + "(" + Join(branches, "|") + ")" +
         template_suffix_;
}

SynonymSession RunSynonymSession(
    SynonymFinder& finder,
    const std::function<bool(const std::string&)>& is_synonym,
    size_t max_iterations, size_t max_barren_batches) {
  SynonymSession session;
  size_t barren = 0;
  while (session.iterations < max_iterations && !finder.exhausted() &&
         barren < max_barren_batches) {
    auto batch = finder.NextBatch();
    if (batch.empty()) break;
    ++session.iterations;
    session.candidates_reviewed += batch.size();
    std::vector<std::string> accepted, rejected;
    for (const auto& cand : batch) {
      (is_synonym(cand.phrase) ? accepted : rejected).push_back(cand.phrase);
    }
    if (accepted.empty()) {
      ++barren;
    } else {
      barren = 0;
    }
    finder.ProvideFeedback(accepted, rejected);
  }
  session.found = finder.accepted();
  return session;
}

}  // namespace rulekit::gen
