#ifndef RULEKIT_GEN_SYNONYM_FINDER_H_
#define RULEKIT_GEN_SYNONYM_FINDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/text/tfidf.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace rulekit::gen {

/// Knobs of the §5.1 synonym-discovery tool. Defaults mirror the paper:
/// synonyms up to 3 words, context = 5 words before/after, top-10 batches,
/// prefix/suffix weights 0.5/0.5, Rocchio feedback re-ranking.
struct SynonymFinderConfig {
  size_t max_synonym_words = 3;
  size_t context_window = 5;
  size_t batch_size = 10;
  double prefix_weight = 0.5;
  double suffix_weight = 0.5;
  double rocchio_alpha = 1.0;
  double rocchio_beta = 0.75;
  double rocchio_gamma = 0.25;
  /// Disable to ablate the feedback re-ranking (batches keep the initial
  /// ranking order).
  bool use_feedback = true;
  /// Minimum number of corpus matches for a candidate to be considered.
  size_t min_candidate_matches = 1;
};

/// One ranked candidate shown to the analyst.
struct SynonymCandidate {
  std::string phrase;
  double score = 0.0;
  size_t num_matches = 0;
  /// Up to three sample titles containing the candidate, to help the
  /// analyst verify (paper: "we also show a small set of sample product
  /// titles in which the synonym appears").
  std::vector<std::string> sample_titles;
};

/// Interactive synonym finder for regex disjunctions (§5.1).
///
/// The analyst writes a template like "(motor | engine | \syn) oils?". The
/// tool derives generalized regexes ("(\w+) oils?", "(\w+\s+\w+) oils?",
/// ...), extracts candidate phrases with their prefix/suffix contexts from
/// a corpus of titles, ranks candidates by TF-IDF context similarity to
/// the golden synonyms ("motor", "engine"), and re-ranks after each batch
/// of analyst feedback using the Rocchio algorithm.
class SynonymFinder {
 public:
  /// Builds a finder. Fails if the template does not contain exactly one
  /// "\syn" inside a parenthesized disjunction, or if the regexes do not
  /// compile.
  static Result<SynonymFinder> Create(std::string_view template_pattern,
                                      const std::vector<std::string>& titles,
                                      SynonymFinderConfig config = {});

  /// The golden synonyms parsed from the template.
  const std::vector<std::string>& golden() const { return golden_; }

  /// The next batch of top-ranked unreviewed candidates (at most
  /// config.batch_size). Empty when exhausted.
  std::vector<SynonymCandidate> NextBatch();

  /// Records the analyst's verdicts for phrases of the current batch and
  /// (if enabled) re-ranks the remaining candidates with Rocchio feedback.
  void ProvideFeedback(const std::vector<std::string>& accepted,
                       const std::vector<std::string>& rejected);

  /// Accepted synonyms so far, in acceptance order.
  const std::vector<std::string>& accepted() const { return accepted_; }

  /// Number of NextBatch() calls so far.
  size_t iterations() const { return iterations_; }

  /// True when every candidate has been reviewed.
  bool exhausted() const { return reviewed_ >= candidates_.size(); }

  size_t num_candidates() const { return candidates_.size(); }

  /// The template with "\syn" replaced by the accepted synonyms — the
  /// expanded rule the analyst walks away with.
  std::string ExpandedPattern() const;

 private:
  struct Candidate {
    std::string phrase;
    text::SparseVector mean_prefix;  // normalized mean over its matches
    text::SparseVector mean_suffix;
    size_t num_matches = 0;
    std::vector<std::string> samples;
    double score = 0.0;
    bool reviewed = false;
  };

  SynonymFinder() = default;

  void ScoreAll();
  void SortUnreviewed();

  SynonymFinderConfig config_;
  std::string template_prefix_;  // pattern text before the disjunction
  std::string template_suffix_;  // pattern text after the disjunction
  std::vector<std::string> golden_;
  std::vector<std::string> accepted_;

  text::SparseVector golden_prefix_;  // (Rocchio-updated) golden centroids
  text::SparseVector golden_suffix_;

  std::vector<Candidate> candidates_;
  size_t reviewed_ = 0;
  size_t iterations_ = 0;
  std::vector<size_t> current_batch_;  // candidate indices
};

/// Drives a finder to completion against an oracle (simulated analyst):
/// `is_synonym(phrase)` returns the verdict for each shown candidate.
/// Stops after `max_iterations` batches, when the finder is exhausted, or
/// after `max_barren_batches` consecutive batches with no acceptance.
struct SynonymSession {
  std::vector<std::string> found;
  size_t iterations = 0;
  size_t candidates_reviewed = 0;
};
SynonymSession RunSynonymSession(
    SynonymFinder& finder,
    const std::function<bool(const std::string&)>& is_synonym,
    size_t max_iterations = 10, size_t max_barren_batches = 2);

}  // namespace rulekit::gen

#endif  // RULEKIT_GEN_SYNONYM_FINDER_H_
