#include "src/gen/rule_selection.h"

#include <algorithm>
#include <queue>

namespace rulekit::gen {

namespace {

// Lazy greedy (CELF-style): marginal coverage gains only shrink as items
// get covered, so a stale heap entry is an upper bound and can be
// re-evaluated on demand instead of recomputing every gain each round.
struct HeapEntry {
  double gain;
  size_t index;
  uint64_t round;  // round at which `gain` was computed
  bool operator<(const HeapEntry& other) const { return gain < other.gain; }
};

size_t NewCoverage(const SelectionCandidate& cand,
                   const std::vector<bool>& covered) {
  size_t fresh = 0;
  for (uint32_t item : cand.covered) {
    if (item < covered.size() && !covered[item]) ++fresh;
  }
  return fresh;
}

// Greedy over the candidate subset `pool`, mutating `covered`; appends
// selected global indices to `out` until `quota` more rules are chosen or
// no rule adds coverage.
void GreedyInto(const std::vector<SelectionCandidate>& candidates,
                const std::vector<size_t>& pool, std::vector<bool>& covered,
                size_t quota, std::vector<size_t>& out) {
  if (quota == 0 || pool.empty()) return;
  std::priority_queue<HeapEntry> heap;
  uint64_t round = 0;
  for (size_t i : pool) {
    double gain = static_cast<double>(NewCoverage(candidates[i], covered)) *
                  candidates[i].confidence;
    heap.push({gain, i, round});
  }
  size_t chosen = 0;
  while (chosen < quota && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.round != round) {
      // Stale: recompute against the current coverage and reinsert.
      top.gain = static_cast<double>(
                     NewCoverage(candidates[top.index], covered)) *
                 candidates[top.index].confidence;
      top.round = round;
      heap.push(top);
      continue;
    }
    // Fresh maximum. Algorithm 1 line 4: add only if it covers new items.
    size_t fresh = NewCoverage(candidates[top.index], covered);
    if (fresh == 0) return;
    for (uint32_t item : candidates[top.index].covered) {
      if (item < covered.size()) covered[item] = true;
    }
    out.push_back(top.index);
    ++chosen;
    ++round;
  }
}

}  // namespace

std::vector<size_t> GreedySelect(
    const std::vector<SelectionCandidate>& candidates, size_t universe_size,
    size_t q) {
  std::vector<bool> covered(universe_size, false);
  std::vector<size_t> pool(candidates.size());
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  std::vector<size_t> out;
  GreedyInto(candidates, pool, covered, q, out);
  return out;
}

std::vector<size_t> GreedyBiasedSelect(
    const std::vector<SelectionCandidate>& candidates, size_t universe_size,
    size_t q, double alpha) {
  std::vector<size_t> high, low;
  for (size_t i = 0; i < candidates.size(); ++i) {
    (candidates[i].confidence >= alpha ? high : low).push_back(i);
  }
  std::vector<bool> covered(universe_size, false);
  std::vector<size_t> out;
  // Algorithm 2: exhaust the high-confidence pool first; only then let
  // low-confidence rules claim the remaining uncovered items.
  GreedyInto(candidates, high, covered, q, out);
  if (out.size() < q) {
    GreedyInto(candidates, low, covered, q - out.size(), out);
  }
  return out;
}

}  // namespace rulekit::gen
