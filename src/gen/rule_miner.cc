#include "src/gen/rule_miner.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/string_util.h"
#include "src/gen/rule_selection.h"
#include "src/rules/token_pattern.h"
#include "src/mining/apriori_all.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace rulekit::gen {

namespace {

// Singular/plural-insensitive token comparison ("rug" matches "rugs").
bool TokensEquivalent(std::string_view a, std::string_view b) {
  if (a == b) return true;
  if (a.size() + 1 == b.size() && b.back() == 's' &&
      b.substr(0, a.size()) == a) {
    return true;
  }
  if (b.size() + 1 == a.size() && a.back() == 's' &&
      a.substr(0, b.size()) == b) {
    return true;
  }
  return false;
}

double ConfidenceOf(const std::vector<std::string>& rule_tokens,
                    const std::vector<std::string>& type_tokens,
                    double support, const RuleMinerConfig& config) {
  size_t present = 0;
  for (const auto& tt : type_tokens) {
    for (const auto& rt : rule_tokens) {
      if (TokensEquivalent(tt, rt)) {
        ++present;
        break;
      }
    }
  }
  const bool full = !type_tokens.empty() && present == type_tokens.size();
  const double frac =
      type_tokens.empty()
          ? 0.0
          : static_cast<double>(present) /
                static_cast<double>(type_tokens.size());
  // The head noun (last token of the type name: "rugs" of "area rugs") is
  // the strongest signal a rule really is about this type.
  bool head = false;
  if (!type_tokens.empty()) {
    for (const auto& rt : rule_tokens) {
      if (TokensEquivalent(type_tokens.back(), rt)) {
        head = true;
        break;
      }
    }
  }
  // Support saturates at 10%: beyond that a sequence is clearly common
  // enough, and raw support would otherwise contribute almost nothing.
  const double support_term = std::min(1.0, support * 10.0);
  double conf = (head ? config.w_head_token : 0.0) +
                (full ? config.w_full_type_name : 0.0) +
                config.w_type_name_tokens * frac +
                config.w_support * support_term;
  return std::min(1.0, conf);
}

}  // namespace

std::string MinedRule::Pattern() const {
  std::vector<std::string> escaped;
  escaped.reserve(tokens.size());
  for (const auto& t : tokens) escaped.push_back(RegexEscape(t));
  return Join(escaped, ".*");
}

Result<rules::Rule> MinedRule::ToRule(std::string id) const {
  // The compiled form anchors each token at word boundaries so the rule's
  // matching semantics equal the subsequence semantics the consistency
  // filter verified.
  auto rule = rules::Rule::Whitelist(std::move(id),
                                     rules::BoundedTokenPattern(tokens),
                                     type);
  if (!rule.ok()) return rule.status();
  rule->metadata().origin = rules::RuleOrigin::kMined;
  rule->metadata().author = "rule-miner";
  rule->metadata().confidence = confidence;
  return rule;
}

MiningOutcome MineRules(const std::vector<data::LabeledItem>& labeled,
                        const RuleMinerConfig& config) {
  MiningOutcome outcome;

  text::TokenizerOptions tok_options;
  tok_options.stopwords = text::Tokenizer::DefaultStopwords();
  text::Tokenizer tokenizer(tok_options);
  text::Vocabulary vocab;

  // Tokenize every title once; group document ids by type.
  std::vector<std::vector<text::TokenId>> docs;
  std::vector<std::string> doc_type;
  std::unordered_map<std::string, std::vector<uint32_t>> docs_of_type;
  docs.reserve(labeled.size());
  for (const auto& li : labeled) {
    docs.push_back(vocab.InternAll(tokenizer.Tokenize(li.item.title)));
    doc_type.push_back(li.label);
    docs_of_type[li.label].push_back(
        static_cast<uint32_t>(docs.size() - 1));
  }

  // Global postings for the consistency/coverage scan.
  std::unordered_map<text::TokenId, std::vector<uint32_t>> postings;
  for (uint32_t d = 0; d < docs.size(); ++d) {
    text::TokenId prev = text::kInvalidTokenId;
    std::vector<text::TokenId> sorted = docs[d];
    std::sort(sorted.begin(), sorted.end());
    for (text::TokenId t : sorted) {
      if (t == prev) continue;
      prev = t;
      postings[t].push_back(d);
    }
  }

  mining::SequenceMiningOptions mining_options;
  mining_options.min_support = config.min_support;
  mining_options.min_length = config.min_tokens;
  mining_options.max_length = config.max_tokens;

  for (auto& [type, type_doc_ids] : docs_of_type) {
    // Mine frequent sequences within this type's titles.
    std::vector<std::vector<text::TokenId>> type_docs;
    type_docs.reserve(type_doc_ids.size());
    for (uint32_t d : type_doc_ids) type_docs.push_back(docs[d]);
    auto sequences = mining::MineFrequentSequences(type_docs,
                                                   mining_options);
    outcome.candidates_mined += sequences.size();

    // Map global doc id -> local index within the type.
    std::unordered_map<uint32_t, uint32_t> local_of;
    for (uint32_t i = 0; i < type_doc_ids.size(); ++i) {
      local_of[type_doc_ids[i]] = i;
    }

    std::vector<std::string> type_tokens = tokenizer.Tokenize(type);

    std::vector<MinedRule> consistent;
    for (const auto& fs : sequences) {
      // Scan the postings of the rarest token: every doc (any type)
      // containing the sequence is in that list.
      const std::vector<uint32_t>* rarest = nullptr;
      for (text::TokenId t : fs.tokens) {
        auto it = postings.find(t);
        if (it == postings.end()) {
          rarest = nullptr;
          break;
        }
        if (rarest == nullptr || it->second.size() < rarest->size()) {
          rarest = &it->second;
        }
      }
      if (rarest == nullptr) continue;

      MinedRule rule;
      rule.type = type;
      for (text::TokenId t : fs.tokens) {
        rule.tokens.push_back(vocab.TokenFor(t));
      }
      bool consistent_rule = true;
      for (uint32_t d : *rarest) {
        if (!mining::IsSubsequence(fs.tokens, docs[d])) continue;
        if (doc_type[d] == type) {
          rule.covered.push_back(local_of[d]);
        } else if (config.require_consistency) {
          consistent_rule = false;
          break;
        }
      }
      if (!consistent_rule || rule.covered.empty()) continue;
      rule.support_count = rule.covered.size();
      rule.support = static_cast<double>(rule.support_count) /
                     static_cast<double>(type_doc_ids.size());
      rule.confidence =
          ConfidenceOf(rule.tokens, type_tokens, rule.support, config);
      consistent.push_back(std::move(rule));
    }
    outcome.candidates_consistent += consistent.size();

    // Greedy-Biased selection (Algorithm 2) over this type's candidates.
    std::vector<SelectionCandidate> cands;
    cands.reserve(consistent.size());
    for (const auto& r : consistent) {
      cands.push_back({r.confidence, r.covered});
    }
    auto picked = GreedyBiasedSelect(cands, type_doc_ids.size(),
                                     config.max_rules_per_type,
                                     config.alpha);
    for (size_t idx : picked) {
      if (consistent[idx].confidence >= config.alpha) {
        ++outcome.num_high_confidence;
      } else {
        ++outcome.num_low_confidence;
      }
      outcome.selected.push_back(std::move(consistent[idx]));
    }
  }

  return outcome;
}

}  // namespace rulekit::gen
