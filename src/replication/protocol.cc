#include "src/replication/protocol.h"

#include "src/common/string_util.h"

namespace rulekit::replication {

namespace {

Status TrailingBytes(const char* what, std::string_view payload, size_t pos) {
  return Status::InvalidArgument(
      StrFormat("%zu trailing bytes after %s payload", payload.size() - pos,
                what));
}

}  // namespace

void EncodeSubscribe(const ReplicaSubscribe& msg, Encoder& enc) {
  enc.PutVarint(msg.protocol_version);
  enc.PutVarint(msg.position.epoch);
  enc.PutVarint(msg.position.offset);
  enc.PutVarint(msg.tenants.size());
  for (const std::string& tenant : msg.tenants) enc.PutString(tenant);
}

Result<ReplicaSubscribe> DecodeSubscribe(std::string_view payload) {
  Decoder dec(payload);
  ReplicaSubscribe msg;
  msg.protocol_version = static_cast<uint32_t>(dec.Varint());
  msg.position.epoch = dec.Varint();
  msg.position.offset = dec.Varint();
  uint64_t count = dec.Varint();
  if (dec.ok() && count > payload.size()) {
    dec.Fail(StrFormat("tenant count %llu exceeds payload size",
                       static_cast<unsigned long long>(count)));
  }
  for (uint64_t i = 0; dec.ok() && i < count; ++i) {
    msg.tenants.push_back(dec.String());
  }
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return TrailingBytes("ReplicaSubscribe", payload, dec.position());
  }
  return msg;
}

void EncodeSubscribeAck(const ReplicaSubscribeAck& msg, Encoder& enc) {
  enc.PutU8(static_cast<uint8_t>(msg.code));
  enc.PutString(msg.message);
  enc.PutVarint(msg.position.epoch);
  enc.PutVarint(msg.position.offset);
}

Result<ReplicaSubscribeAck> DecodeSubscribeAck(std::string_view payload) {
  Decoder dec(payload);
  ReplicaSubscribeAck msg;
  uint8_t code = dec.U8();
  if (dec.ok() && code > serving::kMaxWireCode) {
    dec.Fail(StrFormat("unknown wire code %u", code));
  }
  msg.code = static_cast<serving::WireCode>(code);
  msg.message = dec.String();
  msg.position.epoch = dec.Varint();
  msg.position.offset = dec.Varint();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return TrailingBytes("ReplicaSubscribeAck", payload, dec.position());
  }
  return msg;
}

void EncodeRecord(const ReplicaRecord& msg, Encoder& enc) {
  enc.PutVarint(msg.end.epoch);
  enc.PutVarint(msg.end.offset);
  enc.PutVarint(msg.ship_unix_ms);
  enc.PutU32(msg.crc);
  enc.PutString(msg.payload);
}

Result<ReplicaRecord> DecodeRecord(std::string_view payload) {
  Decoder dec(payload);
  ReplicaRecord msg;
  msg.end.epoch = dec.Varint();
  msg.end.offset = dec.Varint();
  msg.ship_unix_ms = dec.Varint();
  msg.crc = dec.U32();
  msg.payload = dec.String();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return TrailingBytes("ReplicaRecord", payload, dec.position());
  }
  return msg;
}

void EncodeHeartbeat(const ReplicaHeartbeat& msg, Encoder& enc) {
  enc.PutVarint(msg.end.epoch);
  enc.PutVarint(msg.end.offset);
  enc.PutVarint(msg.ship_unix_ms);
}

Result<ReplicaHeartbeat> DecodeHeartbeat(std::string_view payload) {
  Decoder dec(payload);
  ReplicaHeartbeat msg;
  msg.end.epoch = dec.Varint();
  msg.end.offset = dec.Varint();
  msg.ship_unix_ms = dec.Varint();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return TrailingBytes("ReplicaHeartbeat", payload, dec.position());
  }
  return msg;
}

void EncodeAck(const ReplicaAck& msg, Encoder& enc) {
  enc.PutVarint(msg.position.epoch);
  enc.PutVarint(msg.position.offset);
}

Result<ReplicaAck> DecodeAck(std::string_view payload) {
  Decoder dec(payload);
  ReplicaAck msg;
  msg.position.epoch = dec.Varint();
  msg.position.offset = dec.Varint();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return TrailingBytes("ReplicaAck", payload, dec.position());
  }
  return msg;
}

}  // namespace rulekit::replication
