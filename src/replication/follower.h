#ifndef RULEKIT_REPLICATION_FOLLOWER_H_
#define RULEKIT_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/common/result.h"
#include "src/storage/log_cursor.h"
#include "src/storage/wal.h"

namespace rulekit::replication {

/// ReplicaFollower tuning.
struct FollowerConfig {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Tenant subscription (empty = everything). A scoped follower
  /// receives its tenants' and the shared ("") tenant's records only.
  std::vector<std::string> tenants;
  /// When non-empty, every applied record is also appended to a local
  /// mirror log (mirror_dir/mirror.wal) so a restarted follower resumes
  /// from its applied-through position instead of re-streaming the
  /// primary's whole log. The mirror syncs on an interval, not per
  /// record: a crash may lose the unsynced tail, which is harmless —
  /// those records are simply re-fetched from the primary (apply is
  /// idempotent from a resume position). Empty = memory-only follower
  /// that resubscribes from zero on every restart.
  std::string mirror_dir;
  /// Mirror fsync cadence (records between fsyncs).
  size_t mirror_sync_interval = 64;
  /// The embedded pipeline's configuration. `storage_dir` MUST be empty:
  /// a follower's durability is the mirror log above — the repository
  /// must never journal replayed records a second time. Open() rejects a
  /// non-empty storage_dir. `storage.dictionaries` is still honored as
  /// the decode-side dictionary registry.
  chimera::PipelineConfig pipeline;
  /// Reconnect backoff: starts at `reconnect_backoff`, doubles per
  /// consecutive failure up to `max_reconnect_backoff`.
  std::chrono::milliseconds reconnect_backoff{50};
  std::chrono::milliseconds max_reconnect_backoff{1000};
  /// Ack cadence: an ack goes back at least every `ack_every` applied
  /// records (and always when the apply loop reaches a quiet tail).
  size_t ack_every = 32;
  /// Lag observations (ReplicationActivity) land here when set. The
  /// monitor must outlive the follower.
  chimera::QualityMonitor* monitor = nullptr;
};

/// A point-in-time copy of the follower's counters.
struct FollowerStats {
  bool connected = false;
  storage::LogPosition position;    // applied-through
  uint64_t records_applied = 0;
  uint64_t records_mirrored = 0;
  uint64_t batches_applied = 0;     // ApplyReplicated calls (>=1 record)
  uint64_t crc_mismatches = 0;      // wire records that failed re-verify
  uint64_t heartbeats = 0;
  uint64_t connects = 0;            // successful subscriptions
  uint64_t connect_failures = 0;
  double last_lag_ms = 0.0;         // most recent ship -> apply lag
  /// Set (and the replication thread halted) when a shipped record
  /// failed to decode or apply — a poison record would otherwise loop
  /// forever through reconnects. Empty while healthy.
  std::string halt_error;
};

/// A read-only replica: dials the primary's log shipper, subscribes
/// (optionally tenant-scoped, optionally resuming from a local mirror
/// log), and replays every shipped commit record into its own embedded
/// ChimeraPipeline — which then serves Classify traffic from its own
/// snapshots, byte-identical to the primary for the subscribed rule
/// state. Writes never go through a follower: its pipeline is only
/// mutated by ApplyReplicated, and a serving::RuleServer fronting it
/// refuses rule-edit frames with kReadOnly (see server.h).
///
/// Integrity: every wire record's CRC-32 is recomputed before it is
/// applied or mirrored; a mismatch (torn or corrupted in flight) drops
/// the connection and resumes from the last good position — a damaged
/// frame can never reach Replay.
///
/// Threading: Start() runs one replication thread; Stop() joins it.
/// position()/stats()/WaitForPosition are safe from any thread.
class ReplicaFollower {
 public:
  /// Builds the embedded pipeline, recovers the mirror log (when
  /// configured) by replaying it into the pipeline, and returns the
  /// follower stopped — call Start() to begin streaming. Fails on a
  /// non-empty pipeline.storage_dir or an unrecoverable mirror log.
  static Result<std::unique_ptr<ReplicaFollower>> Open(FollowerConfig config);

  ~ReplicaFollower();

  ReplicaFollower(const ReplicaFollower&) = delete;
  ReplicaFollower& operator=(const ReplicaFollower&) = delete;

  /// Starts the replication thread (idempotent).
  void Start();

  /// Stops streaming and joins the thread (idempotent). The pipeline
  /// keeps serving whatever was applied.
  void Stop();

  /// The embedded read-only pipeline (serve Classify through this; do
  /// not mutate it directly).
  chimera::ChimeraPipeline& pipeline() { return *pipeline_; }
  const chimera::ChimeraPipeline& pipeline() const { return *pipeline_; }

  /// Applied-through position on the primary's log.
  storage::LogPosition position() const;

  bool connected() const { return connected_.load(std::memory_order_acquire); }

  FollowerStats stats() const;

  /// Blocks until the applied-through position reaches `target` (true)
  /// or `timeout` elapses (false). The quiesce primitive for tests and
  /// benchmarks: ship everything, WaitForPosition(primary.position()),
  /// then compare states.
  bool WaitForPosition(storage::LogPosition target,
                       std::chrono::milliseconds timeout);

 private:
  explicit ReplicaFollower(FollowerConfig config);

  Status RecoverMirror();
  void ReplicationLoop();
  /// One connect -> subscribe -> stream session. Returns when the
  /// connection drops or Stop() is called.
  void RunSession();
  /// Applies a batch of decoded records and advances position_/lag.
  Status ApplyBatch(std::vector<rules::CommitRecord>& batch,
                    storage::LogPosition end, uint64_t ship_unix_ms);
  void AdvancePosition(storage::LogPosition end);

  const FollowerConfig config_;
  std::unique_ptr<chimera::ChimeraPipeline> pipeline_;
  storage::WriteAheadLog mirror_;  // open only when mirror_dir set

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<int> session_fd_{-1};  // for Stop() to sever a blocked read
  std::thread thread_;

  mutable std::mutex position_mu_;
  std::condition_variable position_cv_;
  storage::LogPosition position_;  // applied-through, guarded by position_mu_
  std::string halt_error_;         // guarded by position_mu_

  std::atomic<uint64_t> records_applied_{0};
  std::atomic<uint64_t> records_mirrored_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> crc_mismatches_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> connects_{0};
  std::atomic<uint64_t> connect_failures_{0};
  std::atomic<uint64_t> last_lag_ms_x1000_{0};
};

}  // namespace rulekit::replication

#endif  // RULEKIT_REPLICATION_FOLLOWER_H_
