#ifndef RULEKIT_REPLICATION_SHIPPER_H_
#define RULEKIT_REPLICATION_SHIPPER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/storage/log_cursor.h"
#include "src/storage/rule_store.h"

namespace rulekit::replication {

/// LogShipper tuning.
struct ShipperConfig {
  /// TCP port to bind on loopback; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Concurrent follower connections; arrivals beyond this are closed.
  size_t max_followers = 8;
  /// Tail-poll pacing when a follower is caught up (also bounds how long
  /// an incoming ack waits before it is drained).
  std::chrono::milliseconds poll_interval{20};
  /// Idle keep-alive cadence: a heartbeat goes out at least this often
  /// so the follower's lag measurement stays live at a quiet tail.
  std::chrono::milliseconds heartbeat_interval{500};
};

/// One live follower's shipping state (diagnostic copy).
struct ShipperFollowerInfo {
  uint64_t id = 0;
  std::vector<std::string> tenants;       // empty = full subscription
  storage::LogPosition shipped;           // streamed through (incl. filtered)
  storage::LogPosition acked;             // follower confirmed applied
  uint64_t records_shipped = 0;
  uint64_t records_filtered = 0;
};

/// A point-in-time copy of the shipper's counters.
struct ShipperStats {
  uint64_t connections_accepted = 0;
  uint64_t subscriptions_refused = 0;
  uint64_t records_shipped = 0;
  uint64_t records_filtered = 0;
  uint64_t bytes_shipped = 0;
  uint64_t heartbeats = 0;
  std::vector<ShipperFollowerInfo> followers;  // live connections only
};

/// The primary-side log shipper: listens on loopback, accepts follower
/// subscriptions, and streams the durable store's commit log to each —
/// one thread and one StoreLogCursor per follower, reading the same
/// `wal-<epoch>` files the store appends to (no writer-side coupling:
/// shipping an old offset never blocks a commit).
///
/// Tenant-scoped subscriptions filter at the source: records whose
/// tenant is outside the follower's subscription are skipped (their
/// position advance travels as a heartbeat), so a single-tenant follower
/// receives only its tenant's and the shared ("") tenant's history.
///
/// Resume: the subscription carries the follower's applied-through
/// position; shipping restarts exactly there. A position that retention
/// has compacted away is refused in the SubscribeAck — the follower must
/// re-seed (fresh directory) and resubscribe from zero.
class LogShipper {
 public:
  /// The store must outlive the shipper.
  LogShipper(const storage::DurableRuleStore& store, ShipperConfig config);
  ~LogShipper();

  LogShipper(const LogShipper&) = delete;
  LogShipper& operator=(const LogShipper&) = delete;

  /// Binds 127.0.0.1:<config.port> and starts the acceptor. Fails
  /// without side effects if the bind/listen does.
  Status Start();

  /// Idempotent: stops accepting, severs every follower connection, and
  /// joins all threads. Followers reconnect-and-resume when the shipper
  /// (or its successor) comes back.
  void Stop();

  /// The bound port (resolves config.port == 0 to the kernel's pick).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ShipperStats stats() const;

  /// Smallest applied-through position acked by any live follower, or
  /// nullopt with no followers. The placement layer's retention signal.
  std::optional<storage::LogPosition> min_acked() const;

 private:
  struct Session {
    uint64_t id = 0;
    int fd = -1;
    std::thread thread;
    mutable std::mutex mu;  // guards the fields below
    std::vector<std::string> tenants;
    storage::LogPosition shipped;
    storage::LogPosition acked;
    uint64_t records_shipped = 0;
    uint64_t records_filtered = 0;
    bool done = false;
  };

  void AcceptLoop();
  void ServeFollower(const std::shared_ptr<Session>& session);
  /// Reads the subscribe frame, validates it, sends the ack. Returns the
  /// accepted start position or an error (already reported to the peer).
  Result<storage::LogPosition> Handshake(Session& session);
  /// Drains any acks queued on the socket without blocking; `wait` > 0
  /// blocks up to that long for the first byte (tail pacing).
  Status DrainAcks(Session& session, std::chrono::milliseconds wait);
  void ReapFinishedSessions();

  const storage::DurableRuleStore& store_;
  const ShipperConfig config_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;

  mutable std::mutex sessions_mu_;
  uint64_t next_session_id_ = 0;
  std::vector<std::shared_ptr<Session>> sessions_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> subscriptions_refused_{0};
  std::atomic<uint64_t> records_shipped_{0};
  std::atomic<uint64_t> records_filtered_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> heartbeats_{0};
};

}  // namespace rulekit::replication

#endif  // RULEKIT_REPLICATION_SHIPPER_H_
