#ifndef RULEKIT_REPLICATION_PROTOCOL_H_
#define RULEKIT_REPLICATION_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/binary_codec.h"
#include "src/common/result.h"
#include "src/serving/wire.h"
#include "src/storage/log_cursor.h"

namespace rulekit::replication {

/// Log-shipping payload codecs for the replica frame types pinned in
/// serving/wire.h (kReplicaSubscribe..kReplicaAck). Transport is the
/// same framed TCP as classification traffic — one connection can in
/// principle carry both, but in practice a follower dials a dedicated
/// replication connection to the primary's shipper port.
///
/// Protocol (DESIGN.md §10): the follower opens with a Subscribe naming
/// its tenant filter and resume position; the shipper answers with a
/// SubscribeAck (accepted, or refused with a reason — e.g. the position
/// was compacted away); then Records and Heartbeats flow primary ->
/// follower while Acks flow back. Every Record carries the primary's
/// CRC for end-to-end re-verification and the position *after* the
/// record, which is what the follower acks once applied.

inline constexpr uint32_t kProtocolVersion = 1;

/// Follower -> primary: open a subscription.
///
///   varint protocol_version | varint epoch | varint offset
///   | varint tenant_count | tenant_count x string
///
/// An empty tenant list subscribes to everything. A non-empty list
/// ships records whose tenant is in the list *plus* default-tenant ("")
/// records — shared rules serve every tenant, so every follower needs
/// them.
struct ReplicaSubscribe {
  uint32_t protocol_version = kProtocolVersion;
  storage::LogPosition position;
  std::vector<std::string> tenants;
};

/// Primary -> follower: subscription verdict.
///
///   u8 code | string message | varint epoch | varint offset
///
/// `position` echoes where the stream will start (the follower's resume
/// point, normalized). code kOk accepts; anything else refuses and the
/// primary closes the connection.
struct ReplicaSubscribeAck {
  serving::WireCode code = serving::WireCode::kOk;
  std::string message;
  storage::LogPosition position;
};

/// Primary -> follower: one shipped commit record.
///
///   varint epoch | varint end_offset | varint ship_unix_ms
///   | u32 crc | string payload
///
/// (epoch, end_offset) is the log position immediately *after* this
/// record on the primary — the follower's position once it applies it.
/// `crc` is the primary's stored CRC-32 of the payload; the follower
/// recomputes and must disconnect on mismatch (a torn or corrupted
/// frame must never reach Replay). `ship_unix_ms` timestamps the send
/// for wall-clock lag measurement.
struct ReplicaRecord {
  storage::LogPosition end;
  uint64_t ship_unix_ms = 0;
  uint32_t crc = 0;
  std::string payload;
};

/// Primary -> follower: the stream position advanced without shippable
/// data (records filtered out by the tenant subscription, or an idle
/// keep-alive at the tail).
///
///   varint epoch | varint end_offset | varint ship_unix_ms
struct ReplicaHeartbeat {
  storage::LogPosition end;
  uint64_t ship_unix_ms = 0;
};

/// Follower -> primary: everything up to `position` is applied (and, if
/// the follower mirrors to local disk, durable).
///
///   varint epoch | varint offset
struct ReplicaAck {
  storage::LogPosition position;
};

void EncodeSubscribe(const ReplicaSubscribe& msg, Encoder& enc);
Result<ReplicaSubscribe> DecodeSubscribe(std::string_view payload);
void EncodeSubscribeAck(const ReplicaSubscribeAck& msg, Encoder& enc);
Result<ReplicaSubscribeAck> DecodeSubscribeAck(std::string_view payload);
void EncodeRecord(const ReplicaRecord& msg, Encoder& enc);
Result<ReplicaRecord> DecodeRecord(std::string_view payload);
void EncodeHeartbeat(const ReplicaHeartbeat& msg, Encoder& enc);
Result<ReplicaHeartbeat> DecodeHeartbeat(std::string_view payload);
void EncodeAck(const ReplicaAck& msg, Encoder& enc);
Result<ReplicaAck> DecodeAck(std::string_view payload);

}  // namespace rulekit::replication

#endif  // RULEKIT_REPLICATION_PROTOCOL_H_
