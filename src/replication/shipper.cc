#include "src/replication/shipper.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/string_util.h"
#include "src/replication/protocol.h"
#include "src/serving/wire.h"
#include "src/storage/codec.h"

namespace rulekit::replication {

namespace {

using serving::FrameType;
using serving::WireCode;
using storage::LogPosition;

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// True when a record tagged `tenant` belongs on a subscription to
/// `tenants`. Default-tenant ("") records ship to everyone: shared rules
/// serve every tenant's view.
bool Subscribed(const std::vector<std::string>& tenants,
                std::string_view tenant) {
  if (tenants.empty() || tenant.empty()) return true;
  return std::find(tenants.begin(), tenants.end(), tenant) != tenants.end();
}

}  // namespace

LogShipper::LogShipper(const storage::DurableRuleStore& store,
                       ShipperConfig config)
    : store_(store), config_(config) {}

LogShipper::~LogShipper() { Stop(); }

Status LogShipper::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(StrFormat("bind 127.0.0.1:%u: %s",
                                          config_.port, std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) < 0) {
    Status st = Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st =
        Status::IOError(StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LogShipper::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    ::shutdown(s->fd, SHUT_RDWR);
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
    ::close(s->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void LogShipper::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    ReapFinishedSessions();
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load(std::memory_order_acquire) ||
        sessions_.size() >= config_.max_followers) {
      subscriptions_refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    auto session = std::make_shared<Session>();
    session->id = ++next_session_id_;
    session->fd = fd;
    session->thread =
        std::thread([this, session] { ServeFollower(session); });
    sessions_.push_back(session);
  }
}

void LogShipper::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    bool done;
    {
      std::lock_guard<std::mutex> slock((*it)->mu);
      done = (*it)->done;
    }
    if (done) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<LogPosition> LogShipper::Handshake(Session& session) {
  auto frame = serving::ReadFrame(session.fd);
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kReplicaSubscribe) {
    return Status::InvalidArgument("expected a ReplicaSubscribe frame");
  }
  auto sub = DecodeSubscribe(frame->payload);
  auto refuse = [&](WireCode code, const std::string& message) -> Status {
    ReplicaSubscribeAck ack;
    ack.code = code;
    ack.message = message;
    Encoder enc;
    EncodeSubscribeAck(ack, enc);
    (void)serving::WriteFrame(session.fd, FrameType::kReplicaSubscribeAck,
                              enc.data());
    subscriptions_refused_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(message);
  };
  if (!sub.ok()) {
    return refuse(WireCode::kInvalidArgument, sub.status().message());
  }
  if (sub->protocol_version != kProtocolVersion) {
    return refuse(WireCode::kInvalidArgument,
                  StrFormat("unsupported replication protocol version %u",
                            sub->protocol_version));
  }
  LogPosition start = sub->position;
  if (start.offset < storage::wal_format::kHeaderBytes) {
    start.offset = storage::wal_format::kHeaderBytes;
  }
  LogPosition end = store_.position();
  if (end < start) {
    return refuse(WireCode::kInvalidArgument,
                  StrFormat("resume position (epoch %llu, offset %llu) is "
                            "beyond the primary's log end",
                            static_cast<unsigned long long>(start.epoch),
                            static_cast<unsigned long long>(start.offset)));
  }
  {
    // Retention check: the resume epoch's segment must still exist
    // (unless it is the live epoch, whose log always does).
    namespace fs = std::filesystem;
    std::error_code ec;
    if (start.epoch < end.epoch &&
        !fs::exists(fs::path(store_.dir()) /
                        ("wal-" + std::to_string(start.epoch)),
                    ec)) {
      return refuse(
          WireCode::kInvalidArgument,
          StrFormat("resume position epoch %llu was compacted away — "
                    "re-seed the follower and subscribe from zero",
                    static_cast<unsigned long long>(start.epoch)));
    }
  }
  {
    std::lock_guard<std::mutex> lock(session.mu);
    session.tenants = sub->tenants;
    session.shipped = start;
    session.acked = start;
  }
  ReplicaSubscribeAck ack;
  ack.code = WireCode::kOk;
  ack.position = start;
  Encoder enc;
  EncodeSubscribeAck(ack, enc);
  RULEKIT_RETURN_IF_ERROR(
      serving::WriteFrame(session.fd, FrameType::kReplicaSubscribeAck,
                          enc.data()));
  return start;
}

Status LogShipper::DrainAcks(Session& session,
                             std::chrono::milliseconds wait) {
  for (;;) {
    pollfd pfd{session.fd, POLLIN, 0};
    int n = ::poll(&pfd, 1, static_cast<int>(wait.count()));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("poll: %s", std::strerror(errno)));
    }
    if (n == 0) return Status::OK();  // nothing queued
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
        (pfd.revents & POLLIN) == 0) {
      return Status::NotFound("follower connection closed");
    }
    auto frame = serving::ReadFrame(session.fd);
    if (!frame.ok()) return frame.status();
    if (frame->type != FrameType::kReplicaAck) {
      return Status::InvalidArgument(
          StrFormat("unexpected frame type %u from follower",
                    static_cast<unsigned>(frame->type)));
    }
    auto ack = DecodeAck(frame->payload);
    if (!ack.ok()) return ack.status();
    std::lock_guard<std::mutex> lock(session.mu);
    if (session.acked < ack->position) session.acked = ack->position;
    wait = std::chrono::milliseconds(0);  // drain the rest non-blocking
  }
}

void LogShipper::ServeFollower(const std::shared_ptr<Session>& session) {
  auto start = Handshake(*session);
  if (start.ok()) {
    storage::StoreLogCursor cursor(store_.dir(), *start);
    std::vector<std::string> tenants;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      tenants = session->tenants;
    }
    auto last_heartbeat = std::chrono::steady_clock::now();
    bool position_unannounced = false;  // filtered records advanced silently
    while (!stopping_.load(std::memory_order_acquire)) {
      auto next = cursor.Next();
      if (!next.ok()) break;  // compacted under us or damaged segment
      if (next->has_value()) {
        storage::LogRecord& rec = **next;
        auto tenant = storage::PeekCommitTenant(rec.payload);
        bool ship = !tenant.ok() || Subscribed(tenants, *tenant);
        // An unpeekable record is shipped, not dropped: the follower's
        // full decode gives the authoritative error.
        if (ship) {
          ReplicaRecord out;
          out.end = rec.end;
          out.ship_unix_ms = NowUnixMs();
          out.crc = rec.crc;
          out.payload = std::move(rec.payload);
          Encoder enc;
          EncodeRecord(out, enc);
          if (!serving::WriteFrame(session->fd, FrameType::kReplicaRecord,
                                   enc.data())
                   .ok()) {
            break;
          }
          records_shipped_.fetch_add(1, std::memory_order_relaxed);
          bytes_shipped_.fetch_add(out.payload.size(),
                                   std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(session->mu);
          session->shipped = rec.end;
          ++session->records_shipped;
        } else {
          records_filtered_.fetch_add(1, std::memory_order_relaxed);
          position_unannounced = true;
          std::lock_guard<std::mutex> lock(session->mu);
          session->shipped = rec.end;
          ++session->records_filtered;
        }
        // Opportunistic ack drain so a fast follower's acks don't pile
        // up behind a long shipping burst.
        if (!DrainAcks(*session, std::chrono::milliseconds(0)).ok()) break;
        continue;
      }
      // Caught up. Announce filtered-past positions and keep the lag
      // signal alive, then wait for more log (an arriving ack wakes us).
      auto now = std::chrono::steady_clock::now();
      if (position_unannounced ||
          now - last_heartbeat >= config_.heartbeat_interval) {
        ReplicaHeartbeat hb;
        {
          std::lock_guard<std::mutex> lock(session->mu);
          hb.end = session->shipped;
        }
        hb.ship_unix_ms = NowUnixMs();
        Encoder enc;
        EncodeHeartbeat(hb, enc);
        if (!serving::WriteFrame(session->fd, FrameType::kReplicaHeartbeat,
                                 enc.data())
                 .ok()) {
          break;
        }
        heartbeats_.fetch_add(1, std::memory_order_relaxed);
        position_unannounced = false;
        last_heartbeat = now;
      }
      Status st = DrainAcks(*session, config_.poll_interval);
      if (!st.ok()) break;
    }
  }
  ::shutdown(session->fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(session->mu);
  session->done = true;
}

ShipperStats LogShipper::stats() const {
  ShipperStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.subscriptions_refused =
      subscriptions_refused_.load(std::memory_order_relaxed);
  stats.records_shipped = records_shipped_.load(std::memory_order_relaxed);
  stats.records_filtered = records_filtered_.load(std::memory_order_relaxed);
  stats.bytes_shipped = bytes_shipped_.load(std::memory_order_relaxed);
  stats.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slock(s->mu);
    if (s->done) continue;
    ShipperFollowerInfo info;
    info.id = s->id;
    info.tenants = s->tenants;
    info.shipped = s->shipped;
    info.acked = s->acked;
    info.records_shipped = s->records_shipped;
    info.records_filtered = s->records_filtered;
    stats.followers.push_back(std::move(info));
  }
  return stats;
}

std::optional<LogPosition> LogShipper::min_acked() const {
  std::optional<LogPosition> min;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slock(s->mu);
    if (s->done) continue;
    if (!min.has_value() || s->acked < *min) min = s->acked;
  }
  return min;
}

}  // namespace rulekit::replication
