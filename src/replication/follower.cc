#include "src/replication/follower.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "src/common/string_util.h"
#include "src/replication/protocol.h"
#include "src/serving/wire.h"
#include "src/storage/codec.h"

namespace rulekit::replication {

namespace {

using serving::FrameType;
using storage::LogPosition;

/// Decoded records per ApplyReplicated call while the socket stays
/// readable: large enough to amortize the snapshot republish across a
/// catch-up burst, small enough that position (and thus acks) advance
/// promptly.
constexpr size_t kMaxApplyBatch = 256;

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string MirrorPath(const std::string& dir) {
  return (std::filesystem::path(dir) / "mirror.wal").string();
}

/// Mirror-log record payload: the primary's record wrapped with the
/// position *after* it, so recovery knows exactly where to resume.
///
///   varint epoch | varint end_offset | string payload
void EncodeMirrorRecord(LogPosition end, std::string_view payload,
                        Encoder& enc) {
  enc.PutVarint(end.epoch);
  enc.PutVarint(end.offset);
  enc.PutString(payload);
}

struct MirrorRecord {
  LogPosition end;
  std::string payload;
};

Result<MirrorRecord> DecodeMirrorRecord(std::string_view bytes) {
  Decoder dec(bytes);
  MirrorRecord rec;
  rec.end.epoch = dec.Varint();
  rec.end.offset = dec.Varint();
  rec.payload = dec.String();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return Status::IOError("trailing bytes after mirror record");
  }
  return rec;
}

/// Drops state-edit ops whose target rule is unknown locally and was not
/// added earlier — in the same record, or by any record still sitting in
/// the current unapplied batch (`pending_added`): the batch is applied
/// as one span, so a rule added three records ago is not in the
/// repository yet when this record is pruned. A tenant-scoped follower
/// that re-subscribed with a narrower filter can legitimately receive a
/// shared-tenant record touching rules it never saw; pruning keeps the
/// subscribed state converging instead of aborting replication. Audit
/// entries stay 1:1 with the surviving ops.
void PruneUnknownOps(const rules::RuleRepository& repo,
                     rules::CommitRecord& record,
                     std::vector<rules::RuleId>& pending_added) {
  std::vector<rules::CommitRecord::Op> ops;
  std::vector<rules::AuditEntry> entries;
  for (size_t i = 0; i < record.ops.size(); ++i) {
    rules::CommitRecord::Op& op = record.ops[i];
    bool keep = true;
    switch (op.kind) {
      case rules::CommitRecord::OpKind::kAdd:
        if (op.rule.has_value()) {
          pending_added.push_back(rules::RuleId(op.rule->id()));
        }
        break;
      case rules::CommitRecord::OpKind::kDisable:
      case rules::CommitRecord::OpKind::kEnable:
      case rules::CommitRecord::OpKind::kRetire:
      case rules::CommitRecord::OpKind::kSetConfidence:
        keep = repo.rules().Find(op.id.view()) != nullptr ||
               std::find(pending_added.begin(), pending_added.end(), op.id) !=
                   pending_added.end();
        break;
      case rules::CommitRecord::OpKind::kCheckpoint:
      case rules::CommitRecord::OpKind::kRestoreCheckpoint:
        break;
    }
    if (keep) {
      ops.push_back(std::move(op));
      entries.push_back(std::move(record.entries[i]));
    }
  }
  record.ops = std::move(ops);
  record.entries = std::move(entries);
}

}  // namespace

ReplicaFollower::ReplicaFollower(FollowerConfig config)
    : config_(std::move(config)) {
  position_.epoch = 0;
  position_.offset = storage::wal_format::kHeaderBytes;
}

Result<std::unique_ptr<ReplicaFollower>> ReplicaFollower::Open(
    FollowerConfig config) {
  if (!config.pipeline.storage_dir.empty()) {
    return Status::InvalidArgument(
        "a follower pipeline must not have its own storage_dir — the "
        "mirror log is the follower's durability (set "
        "FollowerConfig::mirror_dir)");
  }
  auto follower = std::unique_ptr<ReplicaFollower>(
      new ReplicaFollower(std::move(config)));
  follower->pipeline_ =
      std::make_unique<chimera::ChimeraPipeline>(follower->config_.pipeline);
  RULEKIT_RETURN_IF_ERROR(follower->RecoverMirror());
  return follower;
}

ReplicaFollower::~ReplicaFollower() {
  Stop();
  mirror_.Close();  // flushes the interval tail
}

Status ReplicaFollower::RecoverMirror() {
  if (config_.mirror_dir.empty()) return Status::OK();
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.mirror_dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("create %s: %s",
                                     config_.mirror_dir.c_str(),
                                     ec.message().c_str()));
  }
  const std::string path = MirrorPath(config_.mirror_dir);
  if (fs::exists(path, ec)) {
    // Replay the mirror into the pipeline. A torn tail (crash mid-append)
    // is truncated and simply re-fetched from the primary on resume.
    std::vector<rules::CommitRecord> batch;
    std::vector<rules::RuleId> pending_added;
    LogPosition end = position_;
    Status st = storage::WriteAheadLog::Replay(
        path,
        [&](std::string_view bytes) -> Status {
          auto mirror = DecodeMirrorRecord(bytes);
          if (!mirror.ok()) return mirror.status();
          // A record re-shipped after a mid-batch disconnect can land in
          // the mirror twice (it is mirrored before it is applied, and
          // an unapplied batch is re-fetched on reconnect). Positions
          // are monotone, so a non-advancing end is a duplicate: skip.
          if (!(end < mirror->end)) return Status::OK();
          Decoder dec(mirror->payload);
          auto record = storage::DecodeCommitRecord(
              dec, config_.pipeline.storage.dictionaries);
          if (!record.ok()) return record.status();
          // The mirror stores the raw wire payload; re-apply the same
          // unknown-op pruning the streaming path did.
          PruneUnknownOps(pipeline_->repository(), *record, pending_added);
          batch.push_back(std::move(*record));
          end = mirror->end;
          if (batch.size() >= kMaxApplyBatch) {
            RULEKIT_RETURN_IF_ERROR(pipeline_->ApplyReplicated(batch));
            batch.clear();
            pending_added.clear();
          }
          return Status::OK();
        },
        /*stats=*/nullptr, /*truncate_torn_tail=*/true);
    RULEKIT_RETURN_IF_ERROR(st);
    if (!batch.empty()) {
      RULEKIT_RETURN_IF_ERROR(pipeline_->ApplyReplicated(batch));
    }
    std::lock_guard<std::mutex> lock(position_mu_);
    position_ = end;
  }
  auto wal = storage::WriteAheadLog::Open(path, storage::FsyncPolicy::kInterval,
                                          config_.mirror_sync_interval);
  if (!wal.ok()) return wal.status();
  mirror_ = std::move(*wal);
  return Status::OK();
}

void ReplicaFollower::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { ReplicationLoop(); });
}

void ReplicaFollower::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  int fd = session_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  position_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

LogPosition ReplicaFollower::position() const {
  std::lock_guard<std::mutex> lock(position_mu_);
  return position_;
}

FollowerStats ReplicaFollower::stats() const {
  FollowerStats stats;
  stats.connected = connected_.load(std::memory_order_acquire);
  stats.records_applied = records_applied_.load(std::memory_order_relaxed);
  stats.records_mirrored = records_mirrored_.load(std::memory_order_relaxed);
  stats.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  stats.crc_mismatches = crc_mismatches_.load(std::memory_order_relaxed);
  stats.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  stats.connects = connects_.load(std::memory_order_relaxed);
  stats.connect_failures = connect_failures_.load(std::memory_order_relaxed);
  stats.last_lag_ms =
      static_cast<double>(last_lag_ms_x1000_.load(std::memory_order_relaxed)) /
      1000.0;
  std::lock_guard<std::mutex> lock(position_mu_);
  stats.position = position_;
  stats.halt_error = halt_error_;
  return stats;
}

bool ReplicaFollower::WaitForPosition(LogPosition target,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(position_mu_);
  return position_cv_.wait_for(lock, timeout, [&] {
    return target <= position_ || !halt_error_.empty();
  }) && target <= position_;
}

void ReplicaFollower::AdvancePosition(LogPosition end) {
  {
    std::lock_guard<std::mutex> lock(position_mu_);
    if (position_ < end) position_ = end;
  }
  position_cv_.notify_all();
}

Status ReplicaFollower::ApplyBatch(std::vector<rules::CommitRecord>& batch,
                                   LogPosition end, uint64_t ship_unix_ms) {
  if (!batch.empty()) {
    RULEKIT_RETURN_IF_ERROR(pipeline_->ApplyReplicated(batch));
    records_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t now = NowUnixMs();
  double lag_ms =
      ship_unix_ms != 0 && now > ship_unix_ms
          ? static_cast<double>(now - ship_unix_ms)
          : 0.0;  // clocks are the same host's; guard skew anyway
  last_lag_ms_x1000_.store(static_cast<uint64_t>(lag_ms * 1000.0),
                           std::memory_order_relaxed);
  if (config_.monitor != nullptr) {
    chimera::ReplicationActivity activity;
    activity.records_applied = batch.size();
    activity.records_pending = 0;
    activity.lag_ms = lag_ms;
    activity.epoch = end.epoch;
    activity.offset = end.offset;
    config_.monitor->RecordReplication(activity);
  }
  batch.clear();
  AdvancePosition(end);
  return Status::OK();
}

void ReplicaFollower::ReplicationLoop() {
  auto backoff = config_.reconnect_backoff;
  while (!stopping_.load(std::memory_order_acquire)) {
    uint64_t connects_before = connects_.load(std::memory_order_relaxed);
    RunSession();
    {
      std::lock_guard<std::mutex> lock(position_mu_);
      if (!halt_error_.empty()) break;  // poison record: do not loop
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    // A session that subscribed successfully resets the backoff.
    if (connects_.load(std::memory_order_relaxed) != connects_before) {
      backoff = config_.reconnect_backoff;
    }
    std::unique_lock<std::mutex> lock(position_mu_);
    position_cv_.wait_for(lock, backoff, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
    backoff = std::min(backoff * 2, config_.max_reconnect_backoff);
  }
  connected_.store(false, std::memory_order_release);
}

void ReplicaFollower::RunSession() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.primary_port);
  if (::inet_pton(AF_INET, config_.primary_host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  session_fd_.store(fd, std::memory_order_release);

  auto teardown = [&] {
    session_fd_.store(-1, std::memory_order_release);
    connected_.store(false, std::memory_order_release);
    ::close(fd);
  };

  ReplicaSubscribe sub;
  sub.position = position();
  sub.tenants = config_.tenants;
  Encoder enc;
  EncodeSubscribe(sub, enc);
  if (!serving::WriteFrame(fd, FrameType::kReplicaSubscribe, enc.data())
           .ok()) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    teardown();
    return;
  }
  auto ack_frame = serving::ReadFrame(fd);
  if (!ack_frame.ok() ||
      ack_frame->type != FrameType::kReplicaSubscribeAck) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    teardown();
    return;
  }
  auto ack = DecodeSubscribeAck(ack_frame->payload);
  if (!ack.ok() || ack->code != serving::WireCode::kOk) {
    connect_failures_.fetch_add(1, std::memory_order_relaxed);
    teardown();
    return;
  }
  AdvancePosition(ack->position);  // offset normalization on a zero resume
  connects_.fetch_add(1, std::memory_order_relaxed);
  connected_.store(true, std::memory_order_release);

  std::vector<rules::CommitRecord> batch;
  std::vector<rules::RuleId> pending_added;  // adds in the unapplied batch
  LogPosition batch_end = position();
  uint64_t batch_ship_ms = 0;
  size_t applied_since_ack = 0;

  auto send_ack = [&]() -> bool {
    ReplicaAck out;
    out.position = position();
    Encoder ack_enc;
    EncodeAck(out, ack_enc);
    applied_since_ack = 0;
    return serving::WriteFrame(fd, FrameType::kReplicaAck, ack_enc.data())
        .ok();
  };
  auto halt = [&](const Status& error) {
    std::lock_guard<std::mutex> lock(position_mu_);
    halt_error_ = error.message();
    position_cv_.notify_all();
  };
  auto socket_readable = [&]() -> bool {
    pollfd pfd{fd, POLLIN, 0};
    return ::poll(&pfd, 1, 0) == 1 && (pfd.revents & POLLIN) != 0;
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    auto frame = serving::ReadFrame(fd);
    if (!frame.ok()) break;  // connection dropped; resume from position()
    if (frame->type == FrameType::kReplicaRecord) {
      auto record = DecodeRecord(frame->payload);
      if (!record.ok()) break;
      // End-to-end re-verify: the CRC the primary stored must match the
      // bytes that arrived. A mismatch is a torn/corrupted frame — drop
      // the connection and resume from the last good position.
      if (Crc32(record->payload) != record->crc) {
        crc_mismatches_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (mirror_.is_open()) {
        Encoder mirror_enc;
        EncodeMirrorRecord(record->end, record->payload, mirror_enc);
        // A mirror append failure is not fatal to serving: the follower
        // keeps applying in memory and will re-stream on restart.
        if (mirror_.Append(mirror_enc.data()).ok()) {
          records_mirrored_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      Decoder dec(record->payload);
      auto commit = storage::DecodeCommitRecord(
          dec, config_.pipeline.storage.dictionaries);
      if (!commit.ok()) {
        halt(commit.status());
        break;
      }
      PruneUnknownOps(pipeline_->repository(), *commit, pending_added);
      batch.push_back(std::move(*commit));
      batch_end = record->end;
      batch_ship_ms = record->ship_unix_ms;
      ++applied_since_ack;
      // Keep draining while the primary is bursting; apply once the
      // socket goes quiet or the batch is full.
      if (batch.size() < kMaxApplyBatch && socket_readable()) continue;
      Status st = ApplyBatch(batch, batch_end, batch_ship_ms);
      if (!st.ok()) {
        halt(st);
        break;
      }
      pending_added.clear();
      if (applied_since_ack >= config_.ack_every || !socket_readable()) {
        if (!send_ack()) break;
      }
    } else if (frame->type == FrameType::kReplicaHeartbeat) {
      auto hb = DecodeHeartbeat(frame->payload);
      if (!hb.ok()) break;
      heartbeats_.fetch_add(1, std::memory_order_relaxed);
      // Flush anything batched, then advance past the filtered/idle gap.
      Status st = ApplyBatch(batch, hb->end, hb->ship_unix_ms);
      if (!st.ok()) {
        halt(st);
        break;
      }
      pending_added.clear();
      if (!send_ack()) break;
    } else {
      break;  // protocol violation: reconnect cleanly
    }
  }
  // Best effort: the interval-mode mirror tail is synced on disconnect
  // so a follower crash right after loses at most the in-flight batch.
  if (mirror_.is_open()) (void)mirror_.Sync();
  teardown();
}

}  // namespace rulekit::replication
