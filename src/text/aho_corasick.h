#ifndef RULEKIT_TEXT_AHO_CORASICK_H_
#define RULEKIT_TEXT_AHO_CORASICK_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace rulekit::text {

/// Multi-pattern substring matcher (Aho-Corasick automaton). The rule index
/// uses one automaton over all rules' required literals to map a product
/// title to its candidate rules in one pass over the title.
///
/// Matching is byte-exact; callers normalize case themselves.
class AhoCorasick {
 public:
  AhoCorasick() = default;

  /// Registers a pattern carrying a payload. Call before Build(). Empty
  /// patterns are ignored. The same payload may be attached to several
  /// patterns.
  void Add(std::string_view pattern, uint32_t payload);

  /// Finalizes the automaton. Must be called once, after all Add() calls.
  void Build();

  bool built() const { return built_; }
  size_t num_patterns() const { return num_patterns_; }

  /// Appends to `out` the payloads of all patterns occurring in `text`.
  /// Payloads may repeat if attached to several matching patterns; use
  /// CollectUnique for a deduplicated result.
  void Collect(std::string_view text, std::vector<uint32_t>& out) const;

  /// Distinct payloads of patterns occurring in `text` (sorted).
  std::vector<uint32_t> CollectUnique(std::string_view text) const;

  /// CollectUnique into a caller-owned vector (cleared first). Hot loops
  /// reuse one vector across calls instead of allocating per title.
  void CollectUnique(std::string_view text, std::vector<uint32_t>& out) const;

  /// True if any registered pattern occurs in `text`.
  bool AnyMatch(std::string_view text) const;

 private:
  struct Node {
    std::map<unsigned char, int32_t> next;
    int32_t fail = 0;
    std::vector<uint32_t> outputs;  // payloads ending at this node
  };

  std::vector<Node> nodes_{Node{}};
  bool built_ = false;
  size_t num_patterns_ = 0;
};

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_AHO_CORASICK_H_
