#ifndef RULEKIT_TEXT_TOKENIZER_H_
#define RULEKIT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rulekit::text {

/// Options controlling tokenization of product titles and descriptions.
struct TokenizerOptions {
  /// Lowercase tokens (Chimera normalizes titles before rule matching).
  bool lowercase = true;
  /// Drop tokens consisting only of punctuation.
  bool drop_punctuation = true;
  /// Tokens to drop entirely (the paper's manually compiled stop list used
  /// during rule mining preprocessing).
  std::unordered_set<std::string> stopwords;
};

/// Splits text into word tokens. A token is a maximal run of alphanumeric
/// characters; punctuation splits tokens except for intra-word '-' and '/'
/// which are treated as separators too (so "13-293snb" -> "13", "293snb").
class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options);

  /// Tokenize `textv` according to the options.
  std::vector<std::string> Tokenize(std::string_view textv) const;

  /// Standard English + e-commerce stopwords used by the rule miner.
  static std::unordered_set<std::string> DefaultStopwords();

 private:
  TokenizerOptions options_;
};

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_TOKENIZER_H_
