#include "src/text/vocabulary.h"

namespace rulekit::text {

TokenId Vocabulary::Intern(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kInvalidTokenId : it->second;
}

std::vector<TokenId> Vocabulary::InternAll(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(Intern(t));
  return ids;
}

std::vector<TokenId> Vocabulary::LookupAll(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(Lookup(t));
  return ids;
}

}  // namespace rulekit::text
