#ifndef RULEKIT_TEXT_TFIDF_H_
#define RULEKIT_TEXT_TFIDF_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/text/vocabulary.h"

namespace rulekit::text {

/// Sparse vector over token ids. Entries are kept sorted by token id so
/// dot products are linear merges.
class SparseVector {
 public:
  SparseVector() = default;

  /// Build from (possibly unsorted, possibly duplicated) id/weight pairs;
  /// duplicate ids are summed.
  static SparseVector FromPairs(std::vector<std::pair<TokenId, double>> pairs);

  /// Term-frequency vector of a token sequence (counts).
  static SparseVector FromCounts(const std::vector<TokenId>& ids);

  const std::vector<std::pair<TokenId, double>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  double Dot(const SparseVector& other) const;
  double Norm() const;

  /// Cosine similarity; 0 if either vector is empty or zero.
  double Cosine(const SparseVector& other) const;

  /// this += scale * other.
  void AddScaled(const SparseVector& other, double scale);

  /// Multiply all weights by `scale`.
  void Scale(double scale);

  /// Divide by the L2 norm; no-op for the zero vector.
  void Normalize();

  /// Clamp negative weights to zero (used after Rocchio updates, where the
  /// subtractive term may push weights negative).
  void ClampNonNegative();

  double WeightOf(TokenId id) const;

 private:
  std::vector<std::pair<TokenId, double>> entries_;
};

/// Corpus-level document-frequency statistics, producing TF-IDF vectors:
/// weight(t, d) = tf(t, d) * log(N / df(t)). This is the weighting scheme
/// the paper's synonym finder uses for context vectors (ref [29]).
class TfIdfModel {
 public:
  /// Count one document's worth of token ids (duplicates counted once).
  void AddDocument(const std::vector<TokenId>& ids);

  size_t num_documents() const { return num_documents_; }

  /// log((N+1) / df(t)); tokens never seen take df = 0.5, i.e. strictly
  /// higher idf than any observed token.
  double Idf(TokenId id) const;

  /// TF-IDF vector for a document's token ids.
  SparseVector Vectorize(const std::vector<TokenId>& ids) const;

  /// TF-IDF vector, L2-normalized.
  SparseVector VectorizeNormalized(const std::vector<TokenId>& ids) const;

 private:
  std::unordered_map<TokenId, size_t> df_;
  size_t num_documents_ = 0;
};

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_TFIDF_H_
