#include "src/text/tokenizer.h"

#include <cctype>

namespace rulekit::text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(std::move(options)) {}

std::vector<std::string> Tokenizer::Tokenize(std::string_view textv) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    if (!options_.stopwords.empty() &&
        options_.stopwords.count(current) > 0) {
      current.clear();
      return;
    }
    tokens.push_back(current);
    current.clear();
  };
  for (char c : textv) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current += options_.lowercase
                     ? static_cast<char>(std::tolower(uc))
                     : c;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::unordered_set<std::string> Tokenizer::DefaultStopwords() {
  return {"a",   "an",  "and", "the", "of",  "for", "with", "in",
          "on",  "by",  "to",  "x",   "w",   "pack", "value",
          "new", "set", "pcs", "oz",  "inch"};
}

}  // namespace rulekit::text
