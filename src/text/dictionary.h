#ifndef RULEKIT_TEXT_DICTIONARY_H_
#define RULEKIT_TEXT_DICTIONARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rulekit::text {

/// A phrase found by Dictionary::FindAll: [begin, end) byte offsets into the
/// searched text and the index of the matched dictionary entry.
struct DictionaryMatch {
  size_t begin = 0;
  size_t end = 0;
  size_t entry = 0;
};

/// Token-trie phrase dictionary. Supports "title contains any phrase from
/// this dictionary" rule predicates (the rule-language extension the paper
/// asks for in §4) and dictionary-based IE (brand extraction in §6).
///
/// Matching is word-aligned: a phrase matches only at token boundaries of
/// the lowercased text.
class Dictionary {
 public:
  Dictionary() = default;

  /// Add a phrase (one or more words). Lowercased internally.
  void Add(std::string_view phrase);

  /// Add many phrases.
  void AddAll(const std::vector<std::string>& phrases);

  size_t size() const { return entries_.size(); }
  const std::string& EntryAt(size_t i) const { return entries_[i]; }

  /// All non-overlapping, leftmost-longest phrase matches in `textv`.
  std::vector<DictionaryMatch> FindAll(std::string_view textv) const;

  /// True if any dictionary phrase occurs in `textv`.
  bool ContainsAny(std::string_view textv) const;

 private:
  struct Node {
    // child edges: (word id into words_, node index)
    std::vector<std::pair<size_t, size_t>> children;
    int entry = -1;  // index into entries_ if a phrase ends here
  };

  size_t InternWord(std::string_view w);
  size_t ChildOf(size_t node, size_t word) const;  // npos if absent

  std::vector<std::string> entries_;
  std::vector<std::string> words_;
  std::vector<std::pair<std::string, size_t>> word_index_;  // sorted
  std::vector<Node> nodes_{Node{}};

  static constexpr size_t kNpos = static_cast<size_t>(-1);
};

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_DICTIONARY_H_
