#include "src/text/aho_corasick.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace rulekit::text {

void AhoCorasick::Add(std::string_view pattern, uint32_t payload) {
  assert(!built_);
  if (pattern.empty()) return;
  int32_t node = 0;
  for (unsigned char c : pattern) {
    auto it = nodes_[static_cast<size_t>(node)].next.find(c);
    if (it == nodes_[static_cast<size_t>(node)].next.end()) {
      int32_t child = static_cast<int32_t>(nodes_.size());
      nodes_[static_cast<size_t>(node)].next.emplace(c, child);
      nodes_.push_back(Node{});
      node = child;
    } else {
      node = it->second;
    }
  }
  nodes_[static_cast<size_t>(node)].outputs.push_back(payload);
  ++num_patterns_;
}

void AhoCorasick::Build() {
  assert(!built_);
  // BFS to compute fail links; merge fail outputs into each node so that
  // matching never needs to walk fail chains for outputs.
  std::deque<int32_t> queue;
  for (auto& [c, child] : nodes_[0].next) {
    nodes_[static_cast<size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int32_t u = queue.front();
    queue.pop_front();
    for (auto& [c, v] : nodes_[static_cast<size_t>(u)].next) {
      // Find the longest proper suffix state with an edge on c.
      int32_t f = nodes_[static_cast<size_t>(u)].fail;
      for (;;) {
        auto it = nodes_[static_cast<size_t>(f)].next.find(c);
        if (it != nodes_[static_cast<size_t>(f)].next.end() &&
            it->second != v) {
          nodes_[static_cast<size_t>(v)].fail = it->second;
          break;
        }
        if (f == 0) {
          nodes_[static_cast<size_t>(v)].fail = 0;
          break;
        }
        f = nodes_[static_cast<size_t>(f)].fail;
      }
      const auto& fail_outputs =
          nodes_[static_cast<size_t>(nodes_[static_cast<size_t>(v)].fail)]
              .outputs;
      auto& outputs = nodes_[static_cast<size_t>(v)].outputs;
      outputs.insert(outputs.end(), fail_outputs.begin(),
                     fail_outputs.end());
      queue.push_back(v);
    }
  }
  built_ = true;
}

void AhoCorasick::Collect(std::string_view text,
                          std::vector<uint32_t>& out) const {
  assert(built_);
  int32_t node = 0;
  for (unsigned char c : text) {
    for (;;) {
      auto it = nodes_[static_cast<size_t>(node)].next.find(c);
      if (it != nodes_[static_cast<size_t>(node)].next.end()) {
        node = it->second;
        break;
      }
      if (node == 0) break;
      node = nodes_[static_cast<size_t>(node)].fail;
    }
    const auto& outputs = nodes_[static_cast<size_t>(node)].outputs;
    out.insert(out.end(), outputs.begin(), outputs.end());
  }
}

std::vector<uint32_t> AhoCorasick::CollectUnique(
    std::string_view text) const {
  std::vector<uint32_t> out;
  CollectUnique(text, out);
  return out;
}

void AhoCorasick::CollectUnique(std::string_view text,
                                std::vector<uint32_t>& out) const {
  out.clear();
  Collect(text, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

bool AhoCorasick::AnyMatch(std::string_view text) const {
  assert(built_);
  int32_t node = 0;
  for (unsigned char c : text) {
    for (;;) {
      auto it = nodes_[static_cast<size_t>(node)].next.find(c);
      if (it != nodes_[static_cast<size_t>(node)].next.end()) {
        node = it->second;
        break;
      }
      if (node == 0) break;
      node = nodes_[static_cast<size_t>(node)].fail;
    }
    if (!nodes_[static_cast<size_t>(node)].outputs.empty()) return true;
  }
  return false;
}

}  // namespace rulekit::text
