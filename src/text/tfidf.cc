#include "src/text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rulekit::text {

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<TokenId, double>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector v;
  for (const auto& [id, w] : pairs) {
    if (!v.entries_.empty() && v.entries_.back().first == id) {
      v.entries_.back().second += w;
    } else {
      v.entries_.emplace_back(id, w);
    }
  }
  return v;
}

SparseVector SparseVector::FromCounts(const std::vector<TokenId>& ids) {
  std::vector<std::pair<TokenId, double>> pairs;
  pairs.reserve(ids.size());
  for (TokenId id : ids) {
    if (id != kInvalidTokenId) pairs.emplace_back(id, 1.0);
  }
  return FromPairs(std::move(pairs));
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].first < other.entries_[j].first) {
      ++i;
    } else if (entries_[i].first > other.entries_[j].first) {
      ++j;
    } else {
      sum += entries_[i].second * other.entries_[j].second;
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseVector::Norm() const {
  double sum = 0.0;
  for (const auto& [id, w] : entries_) sum += w * w;
  return std::sqrt(sum);
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

void SparseVector::AddScaled(const SparseVector& other, double scale) {
  std::vector<std::pair<TokenId, double>> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() &&
         entries_[i].first < other.entries_[j].first)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               entries_[i].first > other.entries_[j].first) {
      merged.emplace_back(other.entries_[j].first,
                          scale * other.entries_[j].second);
      ++j;
    } else {
      merged.emplace_back(entries_[i].first,
                          entries_[i].second + scale * other.entries_[j].second);
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void SparseVector::Scale(double scale) {
  for (auto& [id, w] : entries_) w *= scale;
}

void SparseVector::Normalize() {
  double n = Norm();
  if (n == 0.0) return;
  Scale(1.0 / n);
}

void SparseVector::ClampNonNegative() {
  std::vector<std::pair<TokenId, double>> kept;
  kept.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e.second > 0.0) kept.push_back(e);
  }
  entries_ = std::move(kept);
}

double SparseVector::WeightOf(TokenId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& e, TokenId key) { return e.first < key; });
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0;
}

void TfIdfModel::AddDocument(const std::vector<TokenId>& ids) {
  std::unordered_set<TokenId> seen;
  for (TokenId id : ids) {
    if (id == kInvalidTokenId) continue;
    if (seen.insert(id).second) ++df_[id];
  }
  ++num_documents_;
}

double TfIdfModel::Idf(TokenId id) const {
  auto it = df_.find(id);
  double n = static_cast<double>(num_documents_) + 1.0;
  // Unseen tokens take df = 0.5 (strictly rarer than anything observed).
  double df = it == df_.end() ? 0.5 : static_cast<double>(it->second);
  return std::log(n / df);
}

SparseVector TfIdfModel::Vectorize(const std::vector<TokenId>& ids) const {
  SparseVector tf = SparseVector::FromCounts(ids);
  std::vector<std::pair<TokenId, double>> weighted;
  weighted.reserve(tf.entries().size());
  for (const auto& [id, count] : tf.entries()) {
    weighted.emplace_back(id, count * Idf(id));
  }
  return SparseVector::FromPairs(std::move(weighted));
}

SparseVector TfIdfModel::VectorizeNormalized(
    const std::vector<TokenId>& ids) const {
  SparseVector v = Vectorize(ids);
  v.Normalize();
  return v;
}

}  // namespace rulekit::text
