#ifndef RULEKIT_TEXT_SIMILARITY_H_
#define RULEKIT_TEXT_SIMILARITY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rulekit::text {

/// Character n-grams of a string ("abc", 2) -> {"ab", "bc"}. Strings shorter
/// than n yield the whole string as a single gram.
std::unordered_set<std::string> CharNGrams(std::string_view s, size_t n);

/// Jaccard similarity of two sets of character n-grams of the inputs.
/// This is the `jaccard.3g` measure from the paper's EM rule example.
double JaccardNGram(std::string_view a, std::string_view b, size_t n);

/// Jaccard similarity of two token multisets (treated as sets).
double JaccardTokens(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Levenshtein edit distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Normalized edit similarity: 1 - dist/max(len). Both empty -> 1.
double EditSimilarity(std::string_view a, std::string_view b);

/// Overlap coefficient of two sets of tokens: |A∩B| / min(|A|,|B|).
double OverlapCoefficient(const std::unordered_set<std::string>& a,
                          const std::unordered_set<std::string>& b);

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_SIMILARITY_H_
