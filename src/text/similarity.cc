#include "src/text/similarity.h"

#include <algorithm>

namespace rulekit::text {

std::unordered_set<std::string> CharNGrams(std::string_view s, size_t n) {
  std::unordered_set<std::string> grams;
  if (s.empty() || n == 0) return grams;
  if (s.size() <= n) {
    grams.emplace(s);
    return grams;
  }
  for (size_t i = 0; i + n <= s.size(); ++i) {
    grams.emplace(s.substr(i, n));
  }
  return grams;
}

namespace {
double JaccardOfSets(const std::unordered_set<std::string>& a,
                     const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& g : small) {
    if (large.count(g)) ++inter;
  }
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}
}  // namespace

double JaccardNGram(std::string_view a, std::string_view b, size_t n) {
  return JaccardOfSets(CharNGrams(a, n), CharNGrams(b, n));
}

double JaccardTokens(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  return JaccardOfSets(sa, sb);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(m);
}

double OverlapCoefficient(const std::unordered_set<std::string>& a,
                          const std::unordered_set<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t inter = 0;
  for (const auto& g : small) {
    if (large.count(g)) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(small.size());
}

}  // namespace rulekit::text
