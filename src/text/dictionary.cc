#include "src/text/dictionary.h"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.h"

namespace rulekit::text {

namespace {

struct WordSpan {
  std::string word;
  size_t begin;
  size_t end;
};

std::vector<WordSpan> SplitWords(std::string_view textv) {
  std::vector<WordSpan> spans;
  size_t i = 0;
  while (i < textv.size()) {
    while (i < textv.size() &&
           !std::isalnum(static_cast<unsigned char>(textv[i]))) {
      ++i;
    }
    size_t start = i;
    std::string word;
    while (i < textv.size() &&
           std::isalnum(static_cast<unsigned char>(textv[i]))) {
      word += static_cast<char>(
          std::tolower(static_cast<unsigned char>(textv[i])));
      ++i;
    }
    if (i > start) spans.push_back({std::move(word), start, i});
  }
  return spans;
}

}  // namespace

size_t Dictionary::InternWord(std::string_view w) {
  std::string key(w);
  auto it = std::lower_bound(
      word_index_.begin(), word_index_.end(), key,
      [](const auto& e, const std::string& k) { return e.first < k; });
  if (it != word_index_.end() && it->first == key) return it->second;
  size_t id = words_.size();
  words_.push_back(key);
  word_index_.insert(it, {std::move(key), id});
  return id;
}

size_t Dictionary::ChildOf(size_t node, size_t word) const {
  for (const auto& [w, child] : nodes_[node].children) {
    if (w == word) return child;
  }
  return kNpos;
}

void Dictionary::Add(std::string_view phrase) {
  std::string lowered = ToLowerAscii(phrase);
  auto spans = SplitWords(lowered);
  if (spans.empty()) return;
  size_t node = 0;
  for (const auto& span : spans) {
    size_t word = InternWord(span.word);
    size_t child = ChildOf(node, word);
    if (child == kNpos) {
      child = nodes_.size();
      nodes_.push_back(Node{});
      nodes_[node].children.emplace_back(word, child);
    }
    node = child;
  }
  if (nodes_[node].entry < 0) {
    nodes_[node].entry = static_cast<int>(entries_.size());
    entries_.emplace_back(lowered);
  }
}

void Dictionary::AddAll(const std::vector<std::string>& phrases) {
  for (const auto& p : phrases) Add(p);
}

std::vector<DictionaryMatch> Dictionary::FindAll(
    std::string_view textv) const {
  std::vector<DictionaryMatch> matches;
  auto spans = SplitWords(textv);
  size_t i = 0;
  while (i < spans.size()) {
    size_t node = 0;
    int best_entry = -1;
    size_t best_len = 0;
    for (size_t j = i; j < spans.size(); ++j) {
      // Look up the word; unseen words terminate the walk.
      auto it = std::lower_bound(
          word_index_.begin(), word_index_.end(), spans[j].word,
          [](const auto& e, const std::string& k) { return e.first < k; });
      if (it == word_index_.end() || it->first != spans[j].word) break;
      size_t child = ChildOf(node, it->second);
      if (child == kNpos) break;
      node = child;
      if (nodes_[node].entry >= 0) {
        best_entry = nodes_[node].entry;
        best_len = j - i + 1;
      }
    }
    if (best_entry >= 0) {
      matches.push_back({spans[i].begin, spans[i + best_len - 1].end,
                         static_cast<size_t>(best_entry)});
      i += best_len;
    } else {
      ++i;
    }
  }
  return matches;
}

bool Dictionary::ContainsAny(std::string_view textv) const {
  return !FindAll(textv).empty();
}

}  // namespace rulekit::text
