#ifndef RULEKIT_TEXT_VOCABULARY_H_
#define RULEKIT_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rulekit::text {

/// Identifier for an interned token. kInvalidTokenId means "not present".
using TokenId = uint32_t;
inline constexpr TokenId kInvalidTokenId = static_cast<TokenId>(-1);

/// Bidirectional token <-> dense-id interning table. Dense ids keep the
/// TF/IDF vectors, inverted indexes, and sequence miner compact.
class Vocabulary {
 public:
  /// Returns the id for `token`, interning it if new.
  TokenId Intern(std::string_view token);

  /// Returns the id for `token` or kInvalidTokenId if never interned.
  TokenId Lookup(std::string_view token) const;

  /// The token for a valid id.
  const std::string& TokenFor(TokenId id) const { return tokens_[id]; }

  size_t size() const { return tokens_.size(); }

  /// Intern every token in `tokens`.
  std::vector<TokenId> InternAll(const std::vector<std::string>& tokens);

  /// Look up every token; unseen tokens map to kInvalidTokenId.
  std::vector<TokenId> LookupAll(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
};

}  // namespace rulekit::text

#endif  // RULEKIT_TEXT_VOCABULARY_H_
