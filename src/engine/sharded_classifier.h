#ifndef RULEKIT_ENGINE_SHARDED_CLASSIFIER_H_
#define RULEKIT_ENGINE_SHARDED_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/rule_classifier.h"
#include "src/ml/classifier.h"

namespace rulekit::engine {

/// Regex match results for one batch across every shard: element s holds
/// shard s's ExecutionResult (matches indexed into that shard's RuleSet).
/// Shards with no active regex rules carry an empty-but-sized result so
/// per-item indexing stays uniform.
struct ShardedExecution {
  std::vector<ExecutionResult> per_shard;

  /// Sum of regex evaluations actually performed across shards.
  size_t total_evaluations() const {
    size_t total = 0;
    for (const auto& exec : per_shard) total += exec.stats.rule_evaluations;
    return total;
  }
};

/// The rule-based classifier over a sharded repository: one per-shard
/// RuleBasedClassifier (each with its own index/executor built against
/// that shard's pinned snapshot), merged through TypeProposals so the
/// output is byte-identical to a monolithic classifier over the union of
/// the shards — proposals max-merge per type, vetoes union, one shared
/// finalize with the deterministic tie-break.
///
/// Construction is cheap when only some shards changed: the serving layer
/// reuses the unchanged shards' classifiers (index builds and all) and
/// rebuilds only the republished ones.
class ShardedRuleClassifier : public ml::Classifier {
 public:
  explicit ShardedRuleClassifier(
      std::vector<std::shared_ptr<const RuleBasedClassifier>> shards)
      : shards_(std::move(shards)) {}

  /// Runs each shard's batch executor over the items; shards with zero
  /// active regex rules are skipped (their results stay empty-but-sized).
  ShardedExecution MatchBatch(
      const std::vector<const data::ProductItem*>& items,
      ThreadPool* pool) const;

  /// Merges every shard's proposals/vetoes for item `index` of `exec`.
  std::vector<ml::ScoredLabel> ScoreMatches(const ShardedExecution& exec,
                                            size_t index) const;

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;

  std::vector<std::vector<ml::ScoredLabel>> PredictBatch(
      const std::vector<const data::ProductItem*>& items,
      ThreadPool* pool) const override;

  // Matches the monolithic classifier so ensemble reports are stable.
  std::string name() const override { return "rule_based"; }

  size_t shard_count() const { return shards_.size(); }
  const RuleBasedClassifier& shard(size_t index) const {
    return *shards_[index];
  }

 private:
  std::vector<std::shared_ptr<const RuleBasedClassifier>> shards_;
};

/// Attribute/value classifier over a sharded repository; same merge
/// protocol as ShardedRuleClassifier (and the same byte-identical-output
/// guarantee versus a monolithic AttrValueClassifier).
class ShardedAttrValueClassifier : public ml::Classifier {
 public:
  explicit ShardedAttrValueClassifier(
      std::vector<std::shared_ptr<const AttrValueClassifier>> shards)
      : shards_(std::move(shards)) {}

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;

  std::string name() const override { return "attr_value"; }

  size_t shard_count() const { return shards_.size(); }

 private:
  std::vector<std::shared_ptr<const AttrValueClassifier>> shards_;
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_SHARDED_CLASSIFIER_H_
