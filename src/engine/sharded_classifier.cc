#include "src/engine/sharded_classifier.h"

namespace rulekit::engine {

ShardedExecution ShardedRuleClassifier::MatchBatch(
    const std::vector<const data::ProductItem*>& items,
    ThreadPool* pool) const {
  ShardedExecution out;
  out.per_shard.resize(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s]->active_rule_count() == 0) {
      // Nothing to run; keep per-item indexing uniform for consumers.
      out.per_shard[s].matches_per_item.resize(items.size());
      continue;
    }
    out.per_shard[s] = shards_[s]->MatchBatch(items, pool);
  }
  return out;
}

std::vector<ml::ScoredLabel> ShardedRuleClassifier::ScoreMatches(
    const ShardedExecution& exec, size_t index) const {
  TypeProposals proposals;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->AccumulateMatches(exec.per_shard[s].matches_per_item[index],
                                  &proposals);
  }
  return proposals.Finalize();
}

std::vector<ml::ScoredLabel> ShardedRuleClassifier::Predict(
    const data::ProductItem& item) const {
  std::vector<const data::ProductItem*> one{&item};
  ShardedExecution exec = MatchBatch(one, nullptr);
  return ScoreMatches(exec, 0);
}

std::vector<std::vector<ml::ScoredLabel>> ShardedRuleClassifier::PredictBatch(
    const std::vector<const data::ProductItem*>& items,
    ThreadPool* pool) const {
  ShardedExecution exec = MatchBatch(items, pool);
  std::vector<std::vector<ml::ScoredLabel>> out(items.size());
  auto score = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = ScoreMatches(exec, i);
    }
  };
  if (pool != nullptr && items.size() > 1) {
    pool->ParallelFor(items.size(), score);
  } else {
    score(0, items.size());
  }
  return out;
}

std::vector<ml::ScoredLabel> ShardedAttrValueClassifier::Predict(
    const data::ProductItem& item) const {
  TypeProposals proposals;
  for (const auto& shard : shards_) {
    if (shard->active_rule_count() == 0) continue;
    shard->Accumulate(item, &proposals);
  }
  return proposals.Finalize();
}

}  // namespace rulekit::engine
