#ifndef RULEKIT_ENGINE_DATA_INDEX_H_
#define RULEKIT_ENGINE_DATA_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/regex/analysis.h"
#include "src/regex/regex.h"

namespace rulekit::engine {

/// Statistics from one indexed query.
struct DataIndexQueryStats {
  size_t candidates = 0;  // titles whose trigrams survived the prefilter
  size_t matches = 0;     // titles the regex actually matched
  bool used_index = false;
};

/// Character-trigram index over a development corpus of titles, for the §4
/// rule-development loop: "the analyst often needs to run variations of
/// rule R repeatedly on a development data set D ... a solution direction
/// is to index the data set D for efficient rule execution."
///
/// Given a rule regex, the index probes the rarest trigram of each required
/// literal, unions the posting lists, and verifies only those titles.
class DataIndex {
 public:
  DataIndex() = default;

  /// Indexes lowercased copies of `titles`. Positions in query results
  /// refer to this vector.
  void Build(const std::vector<std::string>& titles);

  size_t num_titles() const { return titles_.size(); }
  const std::string& TitleAt(size_t i) const { return titles_[i]; }

  /// Indices of titles matching the (case-folded) regex, ascending.
  /// Falls back to a full scan when the regex has no usable prefilter.
  std::vector<size_t> MatchingTitles(const regex::Regex& re,
                                     DataIndexQueryStats* stats = nullptr)
      const;

 private:
  static uint32_t PackTrigram(const char* p);

  std::vector<std::string> titles_;  // lowercased
  std::unordered_map<uint32_t, std::vector<uint32_t>> postings_;
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_DATA_INDEX_H_
