#ifndef RULEKIT_ENGINE_RULE_CLASSIFIER_H_
#define RULEKIT_ENGINE_RULE_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/rule_index.h"
#include "src/ml/classifier.h"
#include "src/rules/rule_set.h"

namespace rulekit::engine {

/// Options for the rule-based classifier.
struct RuleClassifierOptions {
  /// Prune candidate rules with the literal prefilter index.
  bool use_index = true;
};

/// Chimera's rule-based classifier (§3.3): whitelist rules propose types,
/// blacklist rules veto them, and — as the paper requires for
/// order-independence (§4 "Rule System Properties") — ALL whitelist rules
/// run before ANY blacklist rule, so execution order within each phase
/// cannot change the output.
class RuleBasedClassifier : public ml::Classifier {
 public:
  /// `rules` is shared with the pipeline/analyst tooling that mutates it;
  /// call Rebuild() after any mutation.
  RuleBasedClassifier(std::shared_ptr<const rules::RuleSet> rules,
                      RuleClassifierOptions options = {});

  /// Re-derives the rule index from the current rule set.
  void Rebuild();

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "rule_based"; }

  const RuleIndexStats& index_stats() const { return index_.stats(); }

 private:
  std::shared_ptr<const rules::RuleSet> rules_;
  RuleClassifierOptions options_;
  RuleIndex index_;
};

/// Chimera's attribute/value-based classifier (§3.3): attribute-existence
/// rules ("has ISBN => books"), attribute-value rules ("Brand apple =>
/// phone | laptop"), and predicate rules. Positive rules propose types;
/// negative predicate rules veto them.
class AttrValueClassifier : public ml::Classifier {
 public:
  explicit AttrValueClassifier(std::shared_ptr<const rules::RuleSet> rules);

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;
  std::string name() const override { return "attr_value"; }

 private:
  std::shared_ptr<const rules::RuleSet> rules_;
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_RULE_CLASSIFIER_H_
