#ifndef RULEKIT_ENGINE_RULE_CLASSIFIER_H_
#define RULEKIT_ENGINE_RULE_CLASSIFIER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/engine/executor.h"
#include "src/engine/rule_index.h"
#include "src/ml/classifier.h"
#include "src/rules/rule_set.h"

namespace rulekit::engine {

/// Intermediate state of the two-phase propose/veto protocol, exposed so
/// per-shard classifiers can be merged exactly: proposals max-merge per
/// type and vetoes union, which makes scoring over S shards byte-identical
/// to scoring over the monolithic rule set (a veto in one shard kills a
/// proposal from any shard, just as it would in one pass).
struct TypeProposals {
  std::unordered_map<std::string, double> proposed;
  std::unordered_set<std::string> vetoed;

  void Propose(const std::string& type, double score) {
    double& current = proposed[type];
    current = std::max(current, score);
  }
  void Veto(const std::string& type) { vetoed.insert(type); }

  /// Drops vetoed proposals and sorts (score desc, label asc — the
  /// deterministic tie-break every scoring path shares).
  std::vector<ml::ScoredLabel> Finalize() const;
};

/// Options for the rule-based classifier.
struct RuleClassifierOptions {
  /// Prune candidate rules with the literal prefilter index.
  bool use_index = true;
  /// Optional title sample for the corpus-aware index build (forwarded to
  /// ExecutorOptions::index_sample). Output is identical either way; only
  /// candidate-list sizes change.
  std::shared_ptr<const std::vector<std::string>> index_sample;
};

/// Chimera's rule-based classifier (§3.3): whitelist rules propose types,
/// blacklist rules veto them, and — as the paper requires for
/// order-independence (§4 "Rule System Properties") — ALL whitelist rules
/// run before ANY blacklist rule, so execution order within each phase
/// cannot change the output.
///
/// Built against one (ideally immutable snapshot) rule set; the serving
/// pipeline constructs a fresh classifier per published snapshot, so a
/// const classifier is safe for concurrent Predict/PredictBatch. The
/// regex matching itself is delegated to a RuleExecutor (one shared
/// literal-prefilter index per snapshot; indexed batch path over items).
class RuleBasedClassifier : public ml::Classifier {
 public:
  /// `rules` should be an immutable snapshot when used concurrently; if it
  /// aliases a mutable set, call Rebuild() after any mutation.
  RuleBasedClassifier(std::shared_ptr<const rules::RuleSet> rules,
                      RuleClassifierOptions options = {});

  /// Re-derives the executor (rule index + active-rule list) from the
  /// current rule set.
  void Rebuild();

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;

  /// Indexed batch path: one RuleExecutor run over the whole batch, then
  /// per-item scoring from the matches. Identical output to per-item
  /// Predict.
  std::vector<std::vector<ml::ScoredLabel>> PredictBatch(
      const std::vector<const data::ProductItem*>& items,
      ThreadPool* pool) const override;

  /// Raw regex matches for a batch (rule indices into the rule set). The
  /// serving pipeline runs this once per batch and feeds the matches to
  /// both the voting stage (via ScoreMatches) and the Filter, so blacklist
  /// regexes are evaluated once per item per batch.
  ExecutionResult MatchBatch(const std::vector<const data::ProductItem*>& items,
                             ThreadPool* pool) const;

  /// Converts one item's matched rule indices into the two-phase
  /// whitelist-propose / blacklist-veto scored labels.
  std::vector<ml::ScoredLabel> ScoreMatches(
      const std::vector<size_t>& matched) const;

  /// Accumulates one item's matches into `out` without finalizing, so a
  /// sharded classifier can merge several shards' proposals/vetoes before
  /// the single finalize. ScoreMatches == accumulate-then-Finalize.
  void AccumulateMatches(const std::vector<size_t>& matched,
                         TypeProposals* out) const;

  std::string name() const override { return "rule_based"; }

  const RuleIndexStats& index_stats() const {
    return executor_->index_stats();
  }

  /// Active regex rules behind this classifier (0 = MatchBatch is a no-op
  /// and the sharded path skips it).
  size_t active_rule_count() const { return executor_->active_rule_count(); }

 private:
  std::shared_ptr<const rules::RuleSet> rules_;
  RuleClassifierOptions options_;
  std::unique_ptr<RuleExecutor> executor_;
};

/// Chimera's attribute/value-based classifier (§3.3): attribute-existence
/// rules ("has ISBN => books"), attribute-value rules ("Brand apple =>
/// phone | laptop"), and predicate rules. Positive rules propose types;
/// negative predicate rules veto them.
///
/// The relevant (non-regex) active rules are gathered once at
/// construction, so prediction cost scales with the number of attribute/
/// predicate rules, not the whole repository. Rebuild after mutating the
/// underlying set; snapshot-built instances never need to.
class AttrValueClassifier : public ml::Classifier {
 public:
  explicit AttrValueClassifier(std::shared_ptr<const rules::RuleSet> rules);

  /// Re-gathers the active attribute/predicate rules.
  void Rebuild();

  std::vector<ml::ScoredLabel> Predict(
      const data::ProductItem& item) const override;

  /// Accumulates this shard's attribute/predicate proposals and vetoes
  /// into `out`; Predict == accumulate-then-Finalize.
  void Accumulate(const data::ProductItem& item, TypeProposals* out) const;

  std::string name() const override { return "attr_value"; }

  /// Active attribute/predicate rules (0 = nothing to evaluate).
  size_t active_rule_count() const { return attr_rules_.size(); }

 private:
  std::shared_ptr<const rules::RuleSet> rules_;
  std::vector<size_t> attr_rules_;  // kAttributeExists/kAttributeValue/kPredicate
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_RULE_CLASSIFIER_H_
