#ifndef RULEKIT_ENGINE_HOT_CACHE_H_
#define RULEKIT_ENGINE_HOT_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/frequency_sketch.h"

namespace rulekit::engine {

/// Identifies the classification function a cached result was computed
/// under. `rule_fingerprint` is an order-sensitive hash of every shard's
/// pinned rule version (so any committed rule mutation — AddRules, a
/// transaction, a checkpoint restore, a scale-down's disables — changes
/// it); `semantic_generation` covers the serving inputs that change
/// without a rule commit: suppressed-type edits and ensemble installs.
/// An entry is served only when both match the reader's pinned snapshot;
/// otherwise it is dropped on read. Writers therefore invalidate the
/// whole cache lazily, with zero work on the publish path.
struct VersionTag {
  uint64_t rule_fingerprint = 0;
  uint64_t semantic_generation = 0;
  friend bool operator==(const VersionTag&, const VersionTag&) = default;
};

/// Hot-result cache knobs (see DESIGN.md §6). `enabled` is read by the
/// pipeline (the Gate Keeper memo covers curated short-circuits either
/// way); a directly-constructed HotResultCache ignores it.
struct HotCacheConfig {
  bool enabled = false;
  /// Total entries across all stripes. Rounded up so every stripe holds
  /// at least one entry.
  size_t capacity = 1 << 16;
  /// Lock stripes (hash-partitioned); rounded up to a power of two.
  size_t stripes = 16;
  /// A title's winning type is admitted only once the frequency sketch
  /// has seen the title this many times (K sightings). 1 = admit on
  /// first sight.
  uint32_t admit_after = 3;
  /// Share of each stripe reserved for the protected LRU segment (hits
  /// promote entries into it; one-shot admissions queue in probation and
  /// are evicted first, so a burst of new titles cannot flush the
  /// established hot set).
  double protected_fraction = 0.8;
  /// Maximum age of an entry before it is dropped on read (zero = never
  /// expires, the historical behaviour). A drifting feed — one whose
  /// winning types change without a rule or model edit bumping the
  /// version tag — gets a finite TTL so its memoized winners age out.
  std::chrono::milliseconds ttl{0};
};

/// Aggregate counters since construction (monotonic; read via
/// TotalCounters). `misses` counts both absent keys and pending
/// admissions; a stale drop also counts as a miss for hit-rate purposes.
struct HotCacheCounters {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale_drops = 0;  // entries dropped on read (tag mismatch)
  uint64_t ttl_drops = 0;    // entries dropped on read (older than ttl)
  uint64_t promotions = 0;   // admissions into the cache
  uint64_t evictions = 0;    // entries evicted for capacity
};

/// Outcome of one Lookup (per-batch accounting is built from these).
struct CacheLookup {
  bool hit = false;
  bool stale_dropped = false;  // an entry existed but its tag mismatched
  std::string type;            // valid when hit
};

/// Outcome of one Record.
struct CacheRecord {
  bool admitted = false;   // entered the cache on this call
  bool refreshed = false;  // key was already cached (type/tag refreshed)
  size_t evicted = 0;      // entries evicted to make room
};

/// Cross-batch memoization of classification winners, keyed by lowercased
/// title (the paper's Gate Keeper short-circuit, §3.3, made automatic and
/// hit-rate-driven per the §4 "execute the rule stack only when
/// necessary" directive). Bounded, striped (per-stripe mutex), with
/// sketch-based admission and segmented-LRU eviction; every entry is
/// version-tagged and dropped on read when its tag no longer matches the
/// reader's snapshot, so no stale type is ever served.
///
/// Thread-safe: all state is per-stripe under that stripe's mutex, so
/// concurrent readers/writers contend only when they touch the same
/// stripe. Counters are aggregated per stripe under the same mutex.
class HotResultCache {
 public:
  explicit HotResultCache(HotCacheConfig config = {});

  /// Looks up `key` (an already-lowercased title). A present entry whose
  /// tag differs from `tag` is erased (drop-on-read) and reported as a
  /// stale drop + miss.
  CacheLookup Lookup(std::string_view key, const VersionTag& tag);

  /// Offers a winning (key -> type) outcome computed under `tag`. The
  /// first `admit_after - 1` sightings only feed the frequency sketch;
  /// after that the entry is admitted into the probation segment (and
  /// the stripe evicts its coldest entry if over capacity). A key that
  /// is already cached is refreshed in place — this is how a re-win
  /// under a newer snapshot revalidates an entry without an intervening
  /// stale drop.
  CacheRecord Record(std::string_view key, std::string_view type,
                     const VersionTag& tag);

  /// Sum of all stripes' counters (consistent per stripe, not globally).
  HotCacheCounters TotalCounters() const;

  /// Current number of cached entries.
  size_t size() const;

  size_t capacity() const { return stripe_capacity_ * stripes_.size(); }
  size_t stripe_count() const { return stripes_.size(); }
  const HotCacheConfig& config() const { return config_; }

  /// Drops every entry and resets the admission sketches (not counters).
  void Clear();

 private:
  // Heterogeneous string hashing so Lookup/Record take string_view
  // without materializing a std::string per probe.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view key) const;
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // LRU lists hold pointers to the map's keys (stable across rehash for
  // unordered_map); each entry knows its list position and segment.
  using LruList = std::list<const std::string*>;
  struct Entry {
    std::string type;
    VersionTag tag;
    LruList::iterator pos;
    bool in_protected = false;
    /// Set at admission and refresh; compared against `ttl` on read.
    std::chrono::steady_clock::time_point recorded_at;
  };
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::string, Entry, KeyHash, KeyEq> map;
    LruList probation;   // MRU at front; evictions take the back
    LruList protected_;  // entries that have seen a hit since admission
    FrequencySketch sketch;
    HotCacheCounters counters;

    explicit Stripe(size_t capacity_hint) : sketch(capacity_hint) {}
  };

  Stripe& StripeFor(uint64_t hash) const {
    return *stripes_[hash & stripe_mask_];
  }
  /// Moves a just-hit entry up: probation -> protected (demoting the
  /// protected LRU when that segment is full) or protected front.
  void Touch(Stripe& stripe, Entry& entry);
  /// Evicts the coldest entry (probation back, else protected back).
  void EvictOne(Stripe& stripe);

  HotCacheConfig config_;
  size_t stripe_capacity_ = 0;
  size_t protected_capacity_ = 0;
  uint64_t stripe_mask_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// Per-tenant cache partitioning: one independently-bounded
/// HotResultCache per tenant, created lazily on first touch (tenant key
/// "" is the default tenant and exists from construction). Each tenant
/// draws its bounds/TTL from a registered override, falling back to the
/// default config — so a noisy feed can only churn its own pool, and a
/// drifting feed can be given a short TTL without slowing anyone else.
///
/// Thread-safe: the tenant map is guarded by one mutex taken once per
/// batch (to resolve tenant -> cache); all per-item traffic then goes
/// through the resolved cache's own stripes. Cache pointers are stable
/// for the lifetime of the set.
class TenantCacheSet {
 public:
  explicit TenantCacheSet(HotCacheConfig default_config = {});

  /// Registers (or replaces) the config used when `tenant`'s cache is
  /// first created. No effect on an already-created cache — partitions
  /// are never resized in place.
  void SetConfig(const std::string& tenant, HotCacheConfig config);

  /// The tenant's cache, created on first use.
  HotResultCache& For(const std::string& tenant);

  /// The default tenant's cache (always exists).
  HotResultCache& defaults() { return *default_cache_; }

  /// Tenants with a live cache partition, default ("") first, the rest
  /// sorted.
  std::vector<std::string> ActiveTenants() const;

  /// Sum of every partition's counters.
  HotCacheCounters TotalCounters() const;

 private:
  HotCacheConfig default_config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, HotCacheConfig> overrides_;
  std::unordered_map<std::string, std::unique_ptr<HotResultCache>> caches_;
  HotResultCache* default_cache_ = nullptr;  // owned by caches_[""]
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_HOT_CACHE_H_
