#include "src/engine/hot_cache.h"

#include <algorithm>

#include "src/common/hash.h"

namespace rulekit::engine {

size_t HotResultCache::KeyHash::operator()(std::string_view key) const {
  return static_cast<size_t>(HashBytes(key));
}

HotResultCache::HotResultCache(HotCacheConfig config)
    : config_(config) {
  size_t stripes = 1;
  while (stripes < std::max<size_t>(config_.stripes, 1)) stripes <<= 1;
  stripe_mask_ = stripes - 1;
  const size_t capacity = std::max<size_t>(config_.capacity, 1);
  stripe_capacity_ = (capacity + stripes - 1) / stripes;
  protected_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(stripe_capacity_) *
                             std::clamp(config_.protected_fraction, 0.0,
                                        1.0)));
  if (protected_capacity_ >= stripe_capacity_ && stripe_capacity_ > 1) {
    protected_capacity_ = stripe_capacity_ - 1;  // keep probation non-empty
  }
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(stripe_capacity_));
  }
}

CacheLookup HotResultCache::Lookup(std::string_view key,
                                   const VersionTag& tag) {
  const uint64_t hash = HashBytes(key);
  Stripe& stripe = StripeFor(hash);
  std::lock_guard<std::mutex> lock(stripe.mu);
  ++stripe.counters.lookups;
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    ++stripe.counters.misses;
    return {};
  }
  Entry& entry = it->second;
  if (!(entry.tag == tag)) {
    // Drop on read: the world moved under this entry (rule edit, retrain,
    // or suppression change since it was recorded). The full stack will
    // recompute and re-record under the current tag.
    (entry.in_protected ? stripe.protected_ : stripe.probation)
        .erase(entry.pos);
    stripe.map.erase(it);
    ++stripe.counters.stale_drops;
    ++stripe.counters.misses;
    CacheLookup result;
    result.stale_dropped = true;
    return result;
  }
  Touch(stripe, entry);
  ++stripe.counters.hits;
  CacheLookup result;
  result.hit = true;
  result.type = entry.type;
  return result;
}

CacheRecord HotResultCache::Record(std::string_view key,
                                   std::string_view type,
                                   const VersionTag& tag) {
  const uint64_t hash = HashBytes(key);
  Stripe& stripe = StripeFor(hash);
  std::lock_guard<std::mutex> lock(stripe.mu);
  CacheRecord result;
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    Entry& entry = it->second;
    entry.type.assign(type);
    entry.tag = tag;
    Touch(stripe, entry);
    result.refreshed = true;
    return result;
  }
  if (stripe.sketch.IncrementAndEstimate(hash) < config_.admit_after) {
    return result;  // not hot enough yet; the sketch remembers the sighting
  }
  auto [inserted, ok] = stripe.map.emplace(std::string(key), Entry{});
  (void)ok;
  Entry& entry = inserted->second;
  entry.type.assign(type);
  entry.tag = tag;
  stripe.probation.push_front(&inserted->first);
  entry.pos = stripe.probation.begin();
  entry.in_protected = false;
  ++stripe.counters.promotions;
  result.admitted = true;
  while (stripe.map.size() > stripe_capacity_) {
    EvictOne(stripe);
    ++stripe.counters.evictions;
    ++result.evicted;
  }
  return result;
}

void HotResultCache::Touch(Stripe& stripe, Entry& entry) {
  if (entry.in_protected) {
    stripe.protected_.splice(stripe.protected_.begin(), stripe.protected_,
                             entry.pos);
    return;
  }
  // First hit since admission: promote out of probation. When the
  // protected segment is full its LRU is demoted (not evicted), so a
  // hit never shrinks the cache.
  stripe.protected_.splice(stripe.protected_.begin(), stripe.probation,
                           entry.pos);
  entry.in_protected = true;
  if (stripe.protected_.size() > protected_capacity_) {
    auto lru = std::prev(stripe.protected_.end());
    auto demoted = stripe.map.find(**lru);
    stripe.probation.splice(stripe.probation.begin(), stripe.protected_,
                            lru);
    demoted->second.in_protected = false;
  }
}

void HotResultCache::EvictOne(Stripe& stripe) {
  LruList& victims =
      stripe.probation.empty() ? stripe.protected_ : stripe.probation;
  auto lru = std::prev(victims.end());
  stripe.map.erase(stripe.map.find(**lru));
  victims.erase(lru);
}

HotCacheCounters HotResultCache::TotalCounters() const {
  HotCacheCounters total;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total.lookups += stripe->counters.lookups;
    total.hits += stripe->counters.hits;
    total.misses += stripe->counters.misses;
    total.stale_drops += stripe->counters.stale_drops;
    total.promotions += stripe->counters.promotions;
    total.evictions += stripe->counters.evictions;
  }
  return total;
}

size_t HotResultCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

void HotResultCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->map.clear();
    stripe->probation.clear();
    stripe->protected_.clear();
    stripe->sketch.Clear();
  }
}

}  // namespace rulekit::engine
