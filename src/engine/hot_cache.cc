#include "src/engine/hot_cache.h"

#include <algorithm>

#include "src/common/hash.h"

namespace rulekit::engine {

size_t HotResultCache::KeyHash::operator()(std::string_view key) const {
  return static_cast<size_t>(HashBytes(key));
}

HotResultCache::HotResultCache(HotCacheConfig config)
    : config_(config) {
  size_t stripes = 1;
  while (stripes < std::max<size_t>(config_.stripes, 1)) stripes <<= 1;
  stripe_mask_ = stripes - 1;
  const size_t capacity = std::max<size_t>(config_.capacity, 1);
  stripe_capacity_ = (capacity + stripes - 1) / stripes;
  protected_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(stripe_capacity_) *
                             std::clamp(config_.protected_fraction, 0.0,
                                        1.0)));
  if (protected_capacity_ >= stripe_capacity_ && stripe_capacity_ > 1) {
    protected_capacity_ = stripe_capacity_ - 1;  // keep probation non-empty
  }
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(stripe_capacity_));
  }
}

CacheLookup HotResultCache::Lookup(std::string_view key,
                                   const VersionTag& tag) {
  const uint64_t hash = HashBytes(key);
  Stripe& stripe = StripeFor(hash);
  std::lock_guard<std::mutex> lock(stripe.mu);
  ++stripe.counters.lookups;
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    ++stripe.counters.misses;
    return {};
  }
  Entry& entry = it->second;
  if (!(entry.tag == tag)) {
    // Drop on read: the world moved under this entry (rule edit, retrain,
    // or suppression change since it was recorded). The full stack will
    // recompute and re-record under the current tag.
    (entry.in_protected ? stripe.protected_ : stripe.probation)
        .erase(entry.pos);
    stripe.map.erase(it);
    ++stripe.counters.stale_drops;
    ++stripe.counters.misses;
    CacheLookup result;
    result.stale_dropped = true;
    return result;
  }
  if (config_.ttl.count() > 0 &&
      std::chrono::steady_clock::now() - entry.recorded_at > config_.ttl) {
    // Expired: same drop-on-read discipline, separate counter — the tag
    // still matched, the entry just outlived the feed's trust window.
    (entry.in_protected ? stripe.protected_ : stripe.probation)
        .erase(entry.pos);
    stripe.map.erase(it);
    ++stripe.counters.ttl_drops;
    ++stripe.counters.misses;
    return {};
  }
  Touch(stripe, entry);
  ++stripe.counters.hits;
  CacheLookup result;
  result.hit = true;
  result.type = entry.type;
  return result;
}

CacheRecord HotResultCache::Record(std::string_view key,
                                   std::string_view type,
                                   const VersionTag& tag) {
  const uint64_t hash = HashBytes(key);
  Stripe& stripe = StripeFor(hash);
  std::lock_guard<std::mutex> lock(stripe.mu);
  CacheRecord result;
  auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    Entry& entry = it->second;
    entry.type.assign(type);
    entry.tag = tag;
    if (config_.ttl.count() > 0) {
      entry.recorded_at = std::chrono::steady_clock::now();
    }
    Touch(stripe, entry);
    result.refreshed = true;
    return result;
  }
  if (stripe.sketch.IncrementAndEstimate(hash) < config_.admit_after) {
    return result;  // not hot enough yet; the sketch remembers the sighting
  }
  auto [inserted, ok] = stripe.map.emplace(std::string(key), Entry{});
  (void)ok;
  Entry& entry = inserted->second;
  entry.type.assign(type);
  entry.tag = tag;
  if (config_.ttl.count() > 0) {
    entry.recorded_at = std::chrono::steady_clock::now();
  }
  stripe.probation.push_front(&inserted->first);
  entry.pos = stripe.probation.begin();
  entry.in_protected = false;
  ++stripe.counters.promotions;
  result.admitted = true;
  while (stripe.map.size() > stripe_capacity_) {
    EvictOne(stripe);
    ++stripe.counters.evictions;
    ++result.evicted;
  }
  return result;
}

void HotResultCache::Touch(Stripe& stripe, Entry& entry) {
  if (entry.in_protected) {
    stripe.protected_.splice(stripe.protected_.begin(), stripe.protected_,
                             entry.pos);
    return;
  }
  // First hit since admission: promote out of probation. When the
  // protected segment is full its LRU is demoted (not evicted), so a
  // hit never shrinks the cache.
  stripe.protected_.splice(stripe.protected_.begin(), stripe.probation,
                           entry.pos);
  entry.in_protected = true;
  if (stripe.protected_.size() > protected_capacity_) {
    auto lru = std::prev(stripe.protected_.end());
    auto demoted = stripe.map.find(**lru);
    stripe.probation.splice(stripe.probation.begin(), stripe.protected_,
                            lru);
    demoted->second.in_protected = false;
  }
}

void HotResultCache::EvictOne(Stripe& stripe) {
  LruList& victims =
      stripe.probation.empty() ? stripe.protected_ : stripe.probation;
  auto lru = std::prev(victims.end());
  stripe.map.erase(stripe.map.find(**lru));
  victims.erase(lru);
}

HotCacheCounters HotResultCache::TotalCounters() const {
  HotCacheCounters total;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total.lookups += stripe->counters.lookups;
    total.hits += stripe->counters.hits;
    total.misses += stripe->counters.misses;
    total.stale_drops += stripe->counters.stale_drops;
    total.ttl_drops += stripe->counters.ttl_drops;
    total.promotions += stripe->counters.promotions;
    total.evictions += stripe->counters.evictions;
  }
  return total;
}

size_t HotResultCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->map.size();
  }
  return total;
}

void HotResultCache::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->map.clear();
    stripe->probation.clear();
    stripe->protected_.clear();
    stripe->sketch.Clear();
  }
}

// ---- TenantCacheSet --------------------------------------------------------

TenantCacheSet::TenantCacheSet(HotCacheConfig default_config)
    : default_config_(default_config) {
  auto cache = std::make_unique<HotResultCache>(default_config_);
  default_cache_ = cache.get();
  caches_.emplace(std::string(), std::move(cache));
}

void TenantCacheSet::SetConfig(const std::string& tenant,
                               HotCacheConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  overrides_[tenant] = config;
}

HotResultCache& TenantCacheSet::For(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = caches_.find(tenant);
  if (it == caches_.end()) {
    auto cfg_it = overrides_.find(tenant);
    const HotCacheConfig& cfg =
        cfg_it == overrides_.end() ? default_config_ : cfg_it->second;
    it = caches_.emplace(tenant, std::make_unique<HotResultCache>(cfg))
             .first;
  }
  return *it->second;
}

std::vector<std::string> TenantCacheSet::ActiveTenants() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(caches_.size());
    for (const auto& [tenant, cache] : caches_) out.push_back(tenant);
  }
  std::sort(out.begin(), out.end());  // "" sorts first: default leads
  return out;
}

HotCacheCounters TenantCacheSet::TotalCounters() const {
  std::vector<HotResultCache*> partitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions.reserve(caches_.size());
    for (const auto& [tenant, cache] : caches_) {
      partitions.push_back(cache.get());
    }
  }
  HotCacheCounters total;
  for (const HotResultCache* cache : partitions) {
    HotCacheCounters c = cache->TotalCounters();
    total.lookups += c.lookups;
    total.hits += c.hits;
    total.misses += c.misses;
    total.stale_drops += c.stale_drops;
    total.ttl_drops += c.ttl_drops;
    total.promotions += c.promotions;
    total.evictions += c.evictions;
  }
  return total;
}

}  // namespace rulekit::engine
