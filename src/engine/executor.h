#ifndef RULEKIT_ENGINE_EXECUTOR_H_
#define RULEKIT_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/data/product.h"
#include "src/engine/rule_index.h"
#include "src/rules/rule_set.h"

namespace rulekit::engine {

/// Execution strategy knobs for the §4 execution/optimization experiments.
struct ExecutorOptions {
  /// Prune candidate rules through the literal prefilter index; false =
  /// evaluate every active regex rule on every item (the baseline).
  bool use_index = true;
  /// Optional worker pool for parallel execution over items (the paper's
  /// "execute the rules in parallel on a cluster of machines", scaled to
  /// one machine). Null = single-threaded. A per-call pool passed to
  /// Execute() takes precedence.
  ThreadPool* pool = nullptr;
  /// Optional title sample for the corpus-aware index build (see
  /// RuleIndex::Build's three-arg overload): rules are re-bucketed onto
  /// their rarest required-literal set. Null/empty = structural build.
  /// Shared so snapshot republishes don't copy the sample per shard.
  std::shared_ptr<const std::vector<std::string>> index_sample;
};

/// Aggregate counters from one execution.
struct ExecutionStats {
  size_t items = 0;
  size_t rule_evaluations = 0;  // regex evaluations actually performed
  size_t matches = 0;
  double seconds = 0.0;
};

/// Result of executing a rule set over a batch: for each item, the indices
/// (into RuleSet::rules()) of the active regex rules that matched its
/// title.
struct ExecutionResult {
  std::vector<std::vector<size_t>> matches_per_item;
  ExecutionStats stats;
};

/// Batch executor for regex (whitelist/blacklist) rules. The two strategies
/// — full scan vs indexed — produce identical matches; benchmarks compare
/// their cost.
///
/// The executor is built against one rule set and never mutates it, so a
/// const executor over an immutable snapshot is safe to share across
/// threads; concurrent Execute calls may share one ThreadPool (each call
/// waits only on its own chunks).
class RuleExecutor {
 public:
  RuleExecutor(const rules::RuleSet& set, ExecutorOptions options = {});

  /// Runs all active regex rules over the items.
  ExecutionResult Execute(const std::vector<data::ProductItem>& items) const;

  /// Zero-copy batch path: the serving pipeline classifies a subset of a
  /// batch (items the gate keeper passed through) without materializing a
  /// compacted item vector. `pool` overrides options.pool for this call.
  ExecutionResult Execute(const std::vector<const data::ProductItem*>& items,
                          ThreadPool* pool) const;

  /// The literal-prefilter index (built only when options.use_index); the
  /// rule-based classifier shares it for per-item candidate pruning so the
  /// index is built once per snapshot.
  const RuleIndex& index() const { return index_; }

  const RuleIndexStats& index_stats() const { return index_.stats(); }

  /// Number of active regex rules this executor evaluates. The sharded
  /// serving path skips whole shards whose executors have nothing to run.
  size_t active_rule_count() const { return active_regex_rules_.size(); }

 private:
  const rules::RuleSet& set_;
  ExecutorOptions options_;
  RuleIndex index_;
  std::vector<size_t> active_regex_rules_;
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_EXECUTOR_H_
