#include "src/engine/data_index.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace rulekit::engine {

uint32_t DataIndex::PackTrigram(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2]));
}

void DataIndex::Build(const std::vector<std::string>& titles) {
  titles_.clear();
  postings_.clear();
  titles_.reserve(titles.size());
  for (const auto& t : titles) titles_.push_back(ToLowerAscii(t));

  for (uint32_t i = 0; i < titles_.size(); ++i) {
    const std::string& t = titles_[i];
    if (t.size() < 3) continue;
    uint32_t prev = 0xffffffffu;
    for (size_t j = 0; j + 3 <= t.size(); ++j) {
      uint32_t g = PackTrigram(t.data() + j);
      if (g == prev) continue;  // cheap dedupe of runs
      prev = g;
      auto& list = postings_[g];
      if (list.empty() || list.back() != i) list.push_back(i);
    }
  }
}

std::vector<size_t> DataIndex::MatchingTitles(
    const regex::Regex& re, DataIndexQueryStats* stats) const {
  DataIndexQueryStats local;
  auto literals = regex::RequiredAlternatives(re);

  std::vector<size_t> candidates;
  if (literals.ok()) {
    local.used_index = true;
    // For each alternative literal, probe its rarest trigram; a title can
    // only match the literal if it contains every trigram of the literal,
    // so the rarest one gives the tightest superset.
    std::vector<uint32_t> merged;
    for (const auto& lit : *literals) {
      if (lit.size() < 3) {
        local.used_index = false;
        break;
      }
      const std::vector<uint32_t>* best = nullptr;
      static const std::vector<uint32_t> kEmpty;
      for (size_t j = 0; j + 3 <= lit.size(); ++j) {
        auto it = postings_.find(PackTrigram(lit.data() + j));
        const std::vector<uint32_t>* list = it == postings_.end()
                                                ? &kEmpty
                                                : &it->second;
        if (best == nullptr || list->size() < best->size()) best = list;
      }
      if (best != nullptr) {
        merged.insert(merged.end(), best->begin(), best->end());
      }
    }
    if (local.used_index) {
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      candidates.assign(merged.begin(), merged.end());
    }
  }
  if (!local.used_index) {
    candidates.resize(titles_.size());
    for (size_t i = 0; i < titles_.size(); ++i) candidates[i] = i;
  }
  local.candidates = candidates.size();

  std::vector<size_t> matches;
  for (size_t i : candidates) {
    if (re.PartialMatch(titles_[i])) matches.push_back(i);
  }
  local.matches = matches.size();
  if (stats != nullptr) *stats = local;
  return matches;
}

}  // namespace rulekit::engine
