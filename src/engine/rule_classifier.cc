#include "src/engine/rule_classifier.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rulekit::engine {

RuleBasedClassifier::RuleBasedClassifier(
    std::shared_ptr<const rules::RuleSet> rules,
    RuleClassifierOptions options)
    : rules_(std::move(rules)), options_(options) {
  Rebuild();
}

void RuleBasedClassifier::Rebuild() {
  if (options_.use_index) index_.Build(*rules_);
}

std::vector<ml::ScoredLabel> RuleBasedClassifier::Predict(
    const data::ProductItem& item) const {
  const auto& all = rules_->rules();

  // Phase 1: whitelist rules propose types (max confidence per type).
  // Phase 2: blacklist rules veto types. The two-phase order makes the
  // output independent of rule ordering within each phase.
  std::unordered_map<std::string, double> proposed;
  std::unordered_set<std::string> vetoed;

  auto consider = [&](const rules::Rule& rule) {
    if (!rule.is_active()) return;
    if (rule.kind() == rules::RuleKind::kWhitelist) {
      if (rule.Applies(item)) {
        double& score = proposed[rule.target_type()];
        score = std::max(score, rule.metadata().confidence);
      }
    }
  };
  auto veto = [&](const rules::Rule& rule) {
    if (!rule.is_active()) return;
    if (rule.kind() == rules::RuleKind::kBlacklist) {
      if (rule.Applies(item)) vetoed.insert(rule.target_type());
    }
  };

  if (options_.use_index) {
    auto candidates = index_.Candidates(item.title);
    for (size_t i : candidates) consider(all[i]);
    if (!proposed.empty()) {
      for (size_t i : candidates) veto(all[i]);
    }
  } else {
    for (const auto& rule : all) consider(rule);
    if (!proposed.empty()) {
      for (const auto& rule : all) veto(rule);
    }
  }

  std::vector<ml::ScoredLabel> out;
  for (const auto& [type, score] : proposed) {
    if (vetoed.count(type)) continue;
    out.push_back({type, score});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  return out;
}

AttrValueClassifier::AttrValueClassifier(
    std::shared_ptr<const rules::RuleSet> rules)
    : rules_(std::move(rules)) {}

std::vector<ml::ScoredLabel> AttrValueClassifier::Predict(
    const data::ProductItem& item) const {
  std::unordered_map<std::string, double> proposed;
  std::unordered_set<std::string> vetoed;

  for (const auto& rule : rules_->rules()) {
    if (!rule.is_active()) continue;
    switch (rule.kind()) {
      case rules::RuleKind::kAttributeExists: {
        if (!rule.Applies(item)) break;
        double& score = proposed[rule.target_type()];
        score = std::max(score, rule.metadata().confidence);
        break;
      }
      case rules::RuleKind::kAttributeValue: {
        if (!rule.Applies(item)) break;
        // The value only narrows the item to a candidate set; weight is
        // split across candidates.
        double share = rule.metadata().confidence /
                       static_cast<double>(rule.candidate_types().size());
        for (const auto& type : rule.candidate_types()) {
          double& score = proposed[type];
          score = std::max(score, share);
        }
        break;
      }
      case rules::RuleKind::kPredicate: {
        if (!rule.Applies(item)) break;
        if (rule.is_positive()) {
          double& score = proposed[rule.target_type()];
          score = std::max(score, rule.metadata().confidence);
        } else {
          vetoed.insert(rule.target_type());
        }
        break;
      }
      case rules::RuleKind::kWhitelist:
      case rules::RuleKind::kBlacklist:
        break;  // handled by RuleBasedClassifier
    }
  }

  std::vector<ml::ScoredLabel> out;
  for (const auto& [type, score] : proposed) {
    if (vetoed.count(type)) continue;
    out.push_back({type, score});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  return out;
}

}  // namespace rulekit::engine
