#include "src/engine/rule_classifier.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rulekit::engine {

namespace {

void SortScored(std::vector<ml::ScoredLabel>& out) {
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
}

}  // namespace

std::vector<ml::ScoredLabel> TypeProposals::Finalize() const {
  std::vector<ml::ScoredLabel> out;
  for (const auto& [type, score] : proposed) {
    if (vetoed.count(type)) continue;
    out.push_back({type, score});
  }
  SortScored(out);
  return out;
}

RuleBasedClassifier::RuleBasedClassifier(
    std::shared_ptr<const rules::RuleSet> rules,
    RuleClassifierOptions options)
    : rules_(std::move(rules)), options_(options) {
  Rebuild();
}

void RuleBasedClassifier::Rebuild() {
  executor_ = std::make_unique<RuleExecutor>(
      *rules_, ExecutorOptions{.use_index = options_.use_index,
                               .pool = nullptr,
                               .index_sample = options_.index_sample});
}

void RuleBasedClassifier::AccumulateMatches(const std::vector<size_t>& matched,
                                            TypeProposals* out) const {
  const auto& all = rules_->rules();

  // Phase 1: whitelist rules propose types (max confidence per type).
  // Phase 2: blacklist rules veto types. The two-phase order makes the
  // output independent of rule ordering within each phase. Vetoes are
  // collected even when this shard proposed nothing — another shard may
  // propose the type, and a veto must kill it regardless of which shard
  // hosts each rule.
  for (size_t i : matched) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    if (rule.kind() == rules::RuleKind::kWhitelist) {
      out->Propose(rule.target_type(), rule.metadata().confidence);
    }
  }
  for (size_t i : matched) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    if (rule.kind() == rules::RuleKind::kBlacklist) {
      out->Veto(rule.target_type());
    }
  }
}

std::vector<ml::ScoredLabel> RuleBasedClassifier::ScoreMatches(
    const std::vector<size_t>& matched) const {
  TypeProposals proposals;
  AccumulateMatches(matched, &proposals);
  return proposals.Finalize();
}

std::vector<ml::ScoredLabel> RuleBasedClassifier::Predict(
    const data::ProductItem& item) const {
  std::vector<const data::ProductItem*> one{&item};
  auto exec = executor_->Execute(one, nullptr);
  return ScoreMatches(exec.matches_per_item[0]);
}

ExecutionResult RuleBasedClassifier::MatchBatch(
    const std::vector<const data::ProductItem*>& items,
    ThreadPool* pool) const {
  return executor_->Execute(items, pool);
}

std::vector<std::vector<ml::ScoredLabel>> RuleBasedClassifier::PredictBatch(
    const std::vector<const data::ProductItem*>& items,
    ThreadPool* pool) const {
  auto exec = MatchBatch(items, pool);
  std::vector<std::vector<ml::ScoredLabel>> out(items.size());
  auto score = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = ScoreMatches(exec.matches_per_item[i]);
    }
  };
  if (pool != nullptr && items.size() > 1) {
    pool->ParallelFor(items.size(), score);
  } else {
    score(0, items.size());
  }
  return out;
}

AttrValueClassifier::AttrValueClassifier(
    std::shared_ptr<const rules::RuleSet> rules)
    : rules_(std::move(rules)) {
  Rebuild();
}

void AttrValueClassifier::Rebuild() {
  attr_rules_.clear();
  const auto& all = rules_->rules();
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    switch (rule.kind()) {
      case rules::RuleKind::kAttributeExists:
      case rules::RuleKind::kAttributeValue:
      case rules::RuleKind::kPredicate:
        attr_rules_.push_back(i);
        break;
      case rules::RuleKind::kWhitelist:
      case rules::RuleKind::kBlacklist:
        break;  // handled by RuleBasedClassifier
    }
  }
}

void AttrValueClassifier::Accumulate(const data::ProductItem& item,
                                     TypeProposals* out) const {
  const auto& all = rules_->rules();
  for (size_t i : attr_rules_) {
    const rules::Rule& rule = all[i];
    switch (rule.kind()) {
      case rules::RuleKind::kAttributeExists: {
        if (!rule.Applies(item)) break;
        out->Propose(rule.target_type(), rule.metadata().confidence);
        break;
      }
      case rules::RuleKind::kAttributeValue: {
        if (!rule.Applies(item)) break;
        // The value only narrows the item to a candidate set; weight is
        // split across candidates.
        double share = rule.metadata().confidence /
                       static_cast<double>(rule.candidate_types().size());
        for (const auto& type : rule.candidate_types()) {
          out->Propose(type, share);
        }
        break;
      }
      case rules::RuleKind::kPredicate: {
        if (!rule.Applies(item)) break;
        if (rule.is_positive()) {
          out->Propose(rule.target_type(), rule.metadata().confidence);
        } else {
          out->Veto(rule.target_type());
        }
        break;
      }
      case rules::RuleKind::kWhitelist:
      case rules::RuleKind::kBlacklist:
        break;
    }
  }
}

std::vector<ml::ScoredLabel> AttrValueClassifier::Predict(
    const data::ProductItem& item) const {
  TypeProposals proposals;
  Accumulate(item, &proposals);
  return proposals.Finalize();
}

}  // namespace rulekit::engine
