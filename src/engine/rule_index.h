#ifndef RULEKIT_ENGINE_RULE_INDEX_H_
#define RULEKIT_ENGINE_RULE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/regex/analysis.h"
#include "src/rules/rule_set.h"
#include "src/text/aho_corasick.h"

namespace rulekit::engine {

/// Index statistics, reported by benchmarks.
struct RuleIndexStats {
  size_t indexed_rules = 0;    // rules reachable via literal prefilter
  size_t unindexed_rules = 0;  // rules that must always be evaluated
  size_t literals = 0;         // total prefilter literals registered
  /// Corpus-aware builds only: rules whose chosen literal set differs from
  /// the structural default because it is rarer on the sampled titles.
  size_t rebucketed_rules = 0;
};

/// Maps a product title to the subset of regex rules that can possibly
/// match it (§4 "Rule Execution and Optimization": "index the rules so that
/// given a particular data item, we can quickly locate ... a small set of
/// rules"; cf. ref [31]). Soundness comes from regex/analysis.h: a rule is
/// only skipped if none of its required literals occurs in the title.
class RuleIndex {
 public:
  RuleIndex() = default;

  /// Builds the index over the active kWhitelist/kBlacklist rules of `set`.
  /// Indexed positions refer to `set.rules()`. The index must be rebuilt
  /// whenever rules are added or their states change.
  void Build(const rules::RuleSet& set,
             const regex::AnalysisOptions& options = {});

  /// Corpus-aware build (§4 "Rule Execution and Optimization", the
  /// re-bucketing half): for each rule, enumerates every valid required-
  /// literal set (regex::CandidateAlternativeSets — "usb.*cable" admits
  /// both {"usb"} and {"cable"}) and registers the set whose literals are
  /// rarest on `sample_titles`, so the rule lands in the bucket that
  /// prunes best on real traffic. Matching behavior is identical to the
  /// structural build — every candidate set is individually sound — only
  /// the candidate-list sizes change. Falls back to the structural choice
  /// on ties and when the sample is empty.
  void Build(const rules::RuleSet& set, const regex::AnalysisOptions& options,
             const std::vector<std::string>& sample_titles);

  /// Reusable per-caller buffers for the allocation-free Candidates
  /// overload. One Scratch per thread; it must not be shared.
  struct Scratch {
    std::string lowered;
    std::vector<uint32_t> hits;
  };

  /// Indices (into the RuleSet passed to Build) of rules whose prefilter
  /// fires on `title`, plus all always-check rules. `title` is lowercased
  /// internally. Sorted ascending.
  std::vector<size_t> Candidates(std::string_view title) const;

  /// Candidates into a caller-owned vector (cleared first), reusing the
  /// caller's Scratch so a loop over many titles performs no per-title
  /// allocations once the buffers reach steady-state capacity.
  void Candidates(std::string_view title, Scratch& scratch,
                  std::vector<size_t>& out) const;

  const RuleIndexStats& stats() const { return stats_; }

 private:
  text::AhoCorasick automaton_;
  std::vector<size_t> always_check_;
  RuleIndexStats stats_;
};

}  // namespace rulekit::engine

#endif  // RULEKIT_ENGINE_RULE_INDEX_H_
