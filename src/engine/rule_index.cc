#include "src/engine/rule_index.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/string_util.h"

namespace rulekit::engine {

void RuleIndex::Build(const rules::RuleSet& set,
                      const regex::AnalysisOptions& options) {
  automaton_ = text::AhoCorasick();
  always_check_.clear();
  stats_ = RuleIndexStats{};

  const auto& all = set.rules();
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kBlacklist) {
      continue;
    }
    auto literals = regex::RequiredAlternatives(*rule.pattern_regex(),
                                                options);
    if (!literals.ok()) {
      always_check_.push_back(i);
      ++stats_.unindexed_rules;
      continue;
    }
    for (const auto& lit : *literals) {
      automaton_.Add(lit, static_cast<uint32_t>(i));
      ++stats_.literals;
    }
    ++stats_.indexed_rules;
  }
  automaton_.Build();
  std::sort(always_check_.begin(), always_check_.end());
}

void RuleIndex::Build(const rules::RuleSet& set,
                      const regex::AnalysisOptions& options,
                      const std::vector<std::string>& sample_titles) {
  if (sample_titles.empty()) {
    Build(set, options);
    return;
  }
  automaton_ = text::AhoCorasick();
  always_check_.clear();
  stats_ = RuleIndexStats{};

  const auto& all = set.rules();
  // Candidate literal sets per eligible rule, plus a probe id per distinct
  // literal so one automaton pass over the sample prices all of them.
  std::vector<std::pair<size_t, std::vector<std::vector<std::string>>>>
      eligible;
  std::map<std::string, uint32_t> literal_ids;
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kBlacklist) {
      continue;
    }
    auto sets = regex::CandidateAlternativeSets(rule.pattern_regex()->ast(),
                                                options);
    if (!sets.ok()) {
      always_check_.push_back(i);
      ++stats_.unindexed_rules;
      continue;
    }
    for (const auto& candidate : *sets) {
      for (const auto& lit : candidate) {
        literal_ids.emplace(lit, static_cast<uint32_t>(literal_ids.size()));
      }
    }
    eligible.emplace_back(i, std::move(*sets));
  }

  // One pass over the sample: how many titles contain each literal.
  text::AhoCorasick probe;
  for (const auto& [lit, id] : literal_ids) probe.Add(lit, id);
  probe.Build();
  std::vector<size_t> title_hits(literal_ids.size(), 0);
  std::string lowered;
  std::vector<uint32_t> hits;
  for (const auto& title : sample_titles) {
    lowered = title;
    ToLowerAsciiInPlace(lowered);
    probe.CollectUnique(lowered, hits);
    for (uint32_t id : hits) ++title_hits[id];
  }

  // Register, per rule, the candidate set that fires on the fewest sampled
  // titles (summed per-literal counts — exact for disjoint literals, an
  // upper bound otherwise). Set 0 is the structural default; ties keep it.
  for (auto& [pos, sets] : eligible) {
    auto cost = [&](const std::vector<std::string>& candidate) {
      size_t total = 0;
      for (const auto& lit : candidate) {
        total += title_hits[literal_ids.at(lit)];
      }
      return total;
    };
    size_t best = 0;
    size_t best_cost = cost(sets[0]);
    for (size_t k = 1; k < sets.size(); ++k) {
      size_t c = cost(sets[k]);
      if (c < best_cost) {
        best = k;
        best_cost = c;
      }
    }
    if (best != 0) ++stats_.rebucketed_rules;
    for (const auto& lit : sets[best]) {
      automaton_.Add(lit, static_cast<uint32_t>(pos));
      ++stats_.literals;
    }
    ++stats_.indexed_rules;
  }
  automaton_.Build();
  std::sort(always_check_.begin(), always_check_.end());
}

std::vector<size_t> RuleIndex::Candidates(std::string_view title) const {
  Scratch scratch;
  std::vector<size_t> out;
  Candidates(title, scratch, out);
  return out;
}

void RuleIndex::Candidates(std::string_view title, Scratch& scratch,
                           std::vector<size_t>& out) const {
  scratch.lowered.assign(title);
  ToLowerAsciiInPlace(scratch.lowered);
  automaton_.CollectUnique(scratch.lowered, scratch.hits);
  const std::vector<uint32_t>& hits = scratch.hits;
  out.clear();
  out.reserve(hits.size() + always_check_.size());
  // Merge the sorted hit list with the sorted always-check list.
  size_t i = 0, j = 0;
  while (i < hits.size() || j < always_check_.size()) {
    if (j >= always_check_.size() ||
        (i < hits.size() && hits[i] < always_check_[j])) {
      out.push_back(hits[i++]);
    } else if (i >= hits.size() || always_check_[j] < hits[i]) {
      out.push_back(always_check_[j++]);
    } else {
      out.push_back(hits[i++]);
      ++j;
    }
  }
}

}  // namespace rulekit::engine
