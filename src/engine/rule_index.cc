#include "src/engine/rule_index.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace rulekit::engine {

void RuleIndex::Build(const rules::RuleSet& set,
                      const regex::AnalysisOptions& options) {
  automaton_ = text::AhoCorasick();
  always_check_.clear();
  stats_ = RuleIndexStats{};

  const auto& all = set.rules();
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& rule = all[i];
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kBlacklist) {
      continue;
    }
    auto literals = regex::RequiredAlternatives(*rule.pattern_regex(),
                                                options);
    if (!literals.ok()) {
      always_check_.push_back(i);
      ++stats_.unindexed_rules;
      continue;
    }
    for (const auto& lit : *literals) {
      automaton_.Add(lit, static_cast<uint32_t>(i));
      ++stats_.literals;
    }
    ++stats_.indexed_rules;
  }
  automaton_.Build();
  std::sort(always_check_.begin(), always_check_.end());
}

std::vector<size_t> RuleIndex::Candidates(std::string_view title) const {
  Scratch scratch;
  std::vector<size_t> out;
  Candidates(title, scratch, out);
  return out;
}

void RuleIndex::Candidates(std::string_view title, Scratch& scratch,
                           std::vector<size_t>& out) const {
  scratch.lowered.assign(title);
  ToLowerAsciiInPlace(scratch.lowered);
  automaton_.CollectUnique(scratch.lowered, scratch.hits);
  const std::vector<uint32_t>& hits = scratch.hits;
  out.clear();
  out.reserve(hits.size() + always_check_.size());
  // Merge the sorted hit list with the sorted always-check list.
  size_t i = 0, j = 0;
  while (i < hits.size() || j < always_check_.size()) {
    if (j >= always_check_.size() ||
        (i < hits.size() && hits[i] < always_check_[j])) {
      out.push_back(hits[i++]);
    } else if (i >= hits.size() || always_check_[j] < hits[i]) {
      out.push_back(always_check_[j++]);
    } else {
      out.push_back(hits[i++]);
      ++j;
    }
  }
}

}  // namespace rulekit::engine
