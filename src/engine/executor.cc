#include "src/engine/executor.h"

#include <atomic>
#include <utility>

#include "src/common/stopwatch.h"

namespace rulekit::engine {

RuleExecutor::RuleExecutor(const rules::RuleSet& set,
                           ExecutorOptions options)
    : set_(set), options_(std::move(options)) {
  if (options_.use_index) {
    if (options_.index_sample != nullptr && !options_.index_sample->empty()) {
      index_.Build(set_, {}, *options_.index_sample);
    } else {
      index_.Build(set_);
    }
  }
  const auto& all = set_.rules();
  for (size_t i = 0; i < all.size(); ++i) {
    const rules::Rule& r = all[i];
    if (r.is_active() && (r.kind() == rules::RuleKind::kWhitelist ||
                          r.kind() == rules::RuleKind::kBlacklist)) {
      active_regex_rules_.push_back(i);
    }
  }
}

ExecutionResult RuleExecutor::Execute(
    const std::vector<const data::ProductItem*>& items,
    ThreadPool* pool) const {
  if (pool == nullptr) pool = options_.pool;
  ExecutionResult result;
  result.matches_per_item.resize(items.size());
  std::atomic<size_t> evals{0};
  std::atomic<size_t> matches{0};
  const auto& all = set_.rules();

  Stopwatch timer;
  auto run_range = [&](size_t begin, size_t end) {
    size_t local_evals = 0, local_matches = 0;
    // One scratch + candidate vector per worker: the indexed path reuses
    // their capacity across every item in the range.
    RuleIndex::Scratch scratch;
    std::vector<size_t> candidates;
    for (size_t i = begin; i < end; ++i) {
      const data::ProductItem& item = *items[i];
      auto& out = result.matches_per_item[i];
      if (options_.use_index) {
        index_.Candidates(item.title, scratch, candidates);
      }
      const std::vector<size_t>& to_try =
          options_.use_index ? candidates : active_regex_rules_;
      for (size_t rule_idx : to_try) {
        ++local_evals;
        if (all[rule_idx].pattern_regex()->PartialMatch(item.title)) {
          out.push_back(rule_idx);
          ++local_matches;
        }
      }
    }
    evals.fetch_add(local_evals, std::memory_order_relaxed);
    matches.fetch_add(local_matches, std::memory_order_relaxed);
  };

  if (pool != nullptr) {
    pool->ParallelFor(items.size(), run_range);
  } else {
    run_range(0, items.size());
  }

  result.stats.items = items.size();
  result.stats.rule_evaluations = evals.load();
  result.stats.matches = matches.load();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

ExecutionResult RuleExecutor::Execute(
    const std::vector<data::ProductItem>& items) const {
  std::vector<const data::ProductItem*> ptrs;
  ptrs.reserve(items.size());
  for (const auto& item : items) ptrs.push_back(&item);
  return Execute(ptrs, options_.pool);
}

}  // namespace rulekit::engine
