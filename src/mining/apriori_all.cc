#include "src/mining/apriori_all.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace rulekit::mining {

namespace {

// Sequences here are at most 4 tokens (options.max_length is clamped), so
// they pack into a fixed array key.
struct SeqKey {
  std::array<text::TokenId, 4> tokens{};
  uint8_t len = 0;

  bool operator==(const SeqKey&) const = default;

  static SeqKey Of(const std::vector<text::TokenId>& seq) {
    SeqKey key;
    key.len = static_cast<uint8_t>(seq.size());
    for (size_t i = 0; i < seq.size(); ++i) key.tokens[i] = seq[i];
    return key;
  }

  std::vector<text::TokenId> ToVector() const {
    return std::vector<text::TokenId>(tokens.begin(), tokens.begin() + len);
  }
};

struct SeqKeyHash {
  size_t operator()(const SeqKey& key) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ key.len;
    for (uint8_t i = 0; i < key.len; ++i) {
      h ^= key.tokens[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

using SeqSet = std::unordered_set<SeqKey, SeqKeyHash>;
using SeqCount = std::unordered_map<SeqKey, size_t, SeqKeyHash>;

// Enumerates the length-k subsequences of `doc` whose (k-1)-prefix is in
// `prev_level`, inserting each distinct sequence once into `found`.
void EnumerateCandidates(const std::vector<text::TokenId>& doc, size_t k,
                         const SeqSet& prev_level, SeqSet& found) {
  std::vector<text::TokenId> partial;
  partial.reserve(k);
  // Depth-first over start positions; prune via the apriori property on the
  // (k-1)-prefix before extending to full length.
  auto rec = [&](auto&& self, size_t start) -> void {
    if (partial.size() == k) {
      found.insert(SeqKey::Of(partial));
      return;
    }
    // Apriori prune: a partial of size k-1 must itself be frequent.
    if (partial.size() == k - 1 && k >= 2 &&
        prev_level.find(SeqKey::Of(partial)) == prev_level.end()) {
      return;
    }
    for (size_t i = start; i < doc.size(); ++i) {
      partial.push_back(doc[i]);
      self(self, i + 1);
      partial.pop_back();
    }
  };
  rec(rec, 0);
}

}  // namespace

bool IsSubsequence(const std::vector<text::TokenId>& pattern,
                   const std::vector<text::TokenId>& doc) {
  size_t p = 0;
  for (text::TokenId t : doc) {
    if (p < pattern.size() && t == pattern[p]) ++p;
  }
  return p == pattern.size();
}

std::vector<FrequentSequence> MineFrequentSequences(
    const std::vector<std::vector<text::TokenId>>& docs,
    const SequenceMiningOptions& options) {
  std::vector<FrequentSequence> results;
  if (docs.empty()) return results;

  const size_t max_length = std::min<size_t>(options.max_length, 4);
  const size_t min_length = std::max<size_t>(options.min_length, 1);
  size_t min_count = static_cast<size_t>(
      std::ceil(options.min_support * static_cast<double>(docs.size())));
  min_count = std::max<size_t>(min_count, 1);
  const double n_docs = static_cast<double>(docs.size());

  // Level 1: token presence counts.
  std::unordered_map<text::TokenId, size_t> token_counts;
  for (const auto& doc : docs) {
    std::unordered_set<text::TokenId> seen(doc.begin(), doc.end());
    for (text::TokenId t : seen) ++token_counts[t];
  }
  std::unordered_set<text::TokenId> frequent_tokens;
  SeqSet current_level;
  for (const auto& [t, c] : token_counts) {
    if (c >= min_count) {
      frequent_tokens.insert(t);
      current_level.insert(SeqKey::Of({t}));
      if (min_length <= 1) {
        results.push_back(
            {{t}, c, static_cast<double>(c) / n_docs});
      }
    }
  }

  // Pre-filter docs to frequent tokens once.
  std::vector<std::vector<text::TokenId>> filtered;
  filtered.reserve(docs.size());
  for (const auto& doc : docs) {
    std::vector<text::TokenId> f;
    for (text::TokenId t : doc) {
      if (frequent_tokens.count(t)) f.push_back(t);
    }
    filtered.push_back(std::move(f));
  }

  for (size_t k = 2; k <= max_length; ++k) {
    SeqCount counts;
    SeqSet per_doc;
    for (const auto& doc : filtered) {
      if (doc.size() < k) continue;
      per_doc.clear();
      EnumerateCandidates(doc, k, current_level, per_doc);
      for (const auto& key : per_doc) ++counts[key];
      if (counts.size() > options.max_candidates_per_level) break;
    }
    SeqSet next_level;
    for (const auto& [key, c] : counts) {
      if (c < min_count) continue;
      next_level.insert(key);
      if (k >= min_length) {
        results.push_back(
            {key.ToVector(), c, static_cast<double>(c) / n_docs});
      }
    }
    if (next_level.empty()) break;
    current_level = std::move(next_level);
  }

  std::sort(results.begin(), results.end(),
            [](const FrequentSequence& a, const FrequentSequence& b) {
              if (a.support_count != b.support_count) {
                return a.support_count > b.support_count;
              }
              return a.tokens < b.tokens;
            });
  return results;
}

}  // namespace rulekit::mining
