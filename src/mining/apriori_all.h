#ifndef RULEKIT_MINING_APRIORI_ALL_H_
#define RULEKIT_MINING_APRIORI_ALL_H_

#include <cstddef>
#include <vector>

#include "src/text/vocabulary.h"

namespace rulekit::mining {

/// Options for frequent-sequence mining.
struct SequenceMiningOptions {
  /// Minimum support as a fraction of documents (paper §5.2 uses 0.001).
  double min_support = 0.001;
  /// Only sequences of this length range are returned (paper: 2-4 tokens —
  /// 1-token rules are too general, 5+ too specific).
  size_t min_length = 2;
  size_t max_length = 4;
  /// Safety cap on the candidate set per level.
  size_t max_candidates_per_level = 2000000;
};

/// A frequent token sequence with its support.
struct FrequentSequence {
  std::vector<text::TokenId> tokens;
  size_t support_count = 0;
  double support = 0.0;
};

/// True if `pattern` occurs as a (not necessarily contiguous) subsequence
/// of `doc`.
bool IsSubsequence(const std::vector<text::TokenId>& pattern,
                   const std::vector<text::TokenId>& doc);

/// AprioriAll (Agrawal & Srikant, ICDE'95 — the paper's ref [4]) over
/// token sequences: finds all sequences of length [min_length, max_length]
/// appearing as subsequences in at least min_support of the documents.
/// Each document counts a sequence at most once.
std::vector<FrequentSequence> MineFrequentSequences(
    const std::vector<std::vector<text::TokenId>>& docs,
    const SequenceMiningOptions& options = {});

}  // namespace rulekit::mining

#endif  // RULEKIT_MINING_APRIORI_ALL_H_
