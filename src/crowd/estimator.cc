#include "src/crowd/estimator.h"

#include <algorithm>
#include <cmath>

namespace rulekit::crowd {

PrecisionEstimate WilsonEstimate(size_t positives, size_t n, double z) {
  PrecisionEstimate out;
  out.sample_size = n;
  out.positives = positives;
  if (n == 0) return out;
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(positives) / nn;
  out.estimate = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = p + z2 / (2.0 * nn);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn));
  out.lower = std::max(0.0, (center - margin) / denom);
  out.upper = std::min(1.0, (center + margin) / denom);
  return out;
}

size_t SamplesForHalfWidth(double half_width, double z) {
  half_width = std::max(1e-6, half_width);
  // Normal-approximation planning bound at p = 0.5.
  double n = z * z * 0.25 / (half_width * half_width);
  return static_cast<size_t>(std::ceil(n));
}

}  // namespace rulekit::crowd
