#include "src/crowd/crowd.h"

#include <algorithm>

namespace rulekit::crowd {

CrowdSimulator::CrowdSimulator(const CrowdConfig& config)
    : rng_(config.seed), config_(config) {
  workers_.reserve(config.num_workers);
  for (size_t i = 0; i < config.num_workers; ++i) {
    double acc = config.mean_worker_accuracy +
                 config.worker_accuracy_stddev * rng_.NextGaussian();
    workers_.push_back(std::clamp(acc, 0.51, 0.999));
  }
}

bool CrowdSimulator::AskYesNo(bool ground_truth) {
  size_t yes = 0, no = 0;
  for (size_t v = 0; v < config_.votes_per_task; ++v) {
    const double acc = workers_[rng_.Uniform(workers_.size())];
    bool answer = rng_.Bernoulli(acc) ? ground_truth : !ground_truth;
    (answer ? yes : no) += 1;
    ++num_votes_;
    total_cost_ += config_.cost_per_vote;
  }
  ++num_tasks_;
  bool majority = yes >= no;  // ties (even vote counts) resolve to yes
  if (majority == ground_truth) ++num_correct_;
  return majority;
}

double CrowdSimulator::empirical_accuracy() const {
  if (num_tasks_ == 0) return 1.0;
  return static_cast<double>(num_correct_) /
         static_cast<double>(num_tasks_);
}

}  // namespace rulekit::crowd
