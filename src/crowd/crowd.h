#ifndef RULEKIT_CROWD_CROWD_H_
#define RULEKIT_CROWD_CROWD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace rulekit::crowd {

/// Configuration of the simulated crowd. Workers have individual accuracy
/// levels drawn from a truncated normal; each yes/no task is answered by
/// majority vote of `votes_per_task` randomly chosen workers. This stands
/// in for the paper's crowdsourcing platform (DESIGN.md substitution
/// table): what the experiments need is a noisy labeling oracle with a
/// per-question cost.
struct CrowdConfig {
  uint64_t seed = 123;
  size_t num_workers = 50;
  double mean_worker_accuracy = 0.93;
  double worker_accuracy_stddev = 0.05;
  size_t votes_per_task = 3;
  double cost_per_vote = 1.0;  // abstract cost units
};

/// Simulated crowdsourcing marketplace for yes/no verification tasks
/// ("is predicted type T correct for this item?").
class CrowdSimulator {
 public:
  explicit CrowdSimulator(const CrowdConfig& config);

  /// Poses one yes/no task whose correct answer is `ground_truth`; returns
  /// the majority vote. Spends votes_per_task * cost_per_vote.
  bool AskYesNo(bool ground_truth);

  /// Accounting.
  size_t num_tasks() const { return num_tasks_; }
  size_t num_votes() const { return num_votes_; }
  double total_cost() const { return total_cost_; }

  /// Empirical accuracy of the majority vote so far (for calibration
  /// tests); NaN-free: returns 1.0 before any task.
  double empirical_accuracy() const;

  const std::vector<double>& worker_accuracies() const { return workers_; }

 private:
  Rng rng_;
  CrowdConfig config_;
  std::vector<double> workers_;
  size_t num_tasks_ = 0;
  size_t num_votes_ = 0;
  size_t num_correct_ = 0;
  double total_cost_ = 0.0;
};

}  // namespace rulekit::crowd

#endif  // RULEKIT_CROWD_CROWD_H_
