#ifndef RULEKIT_CROWD_ESTIMATOR_H_
#define RULEKIT_CROWD_ESTIMATOR_H_

#include <cstddef>

namespace rulekit::crowd {

/// A sampled precision estimate with a Wilson-score confidence interval.
struct PrecisionEstimate {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 1.0;
  size_t sample_size = 0;
  size_t positives = 0;
};

/// Wilson score interval for a binomial proportion at confidence level
/// z (1.96 = 95%). Well-behaved for small n and extreme proportions,
/// which matters for "tail" rules sampled with a handful of items.
PrecisionEstimate WilsonEstimate(size_t positives, size_t n, double z = 1.96);

/// Number of samples needed so the Wilson interval half-width at worst-case
/// p=0.5 is at most `half_width` (planning helper for sampling budgets).
size_t SamplesForHalfWidth(double half_width, double z = 1.96);

}  // namespace rulekit::crowd

#endif  // RULEKIT_CROWD_ESTIMATOR_H_
