#include "src/regex/containment.h"

#include <deque>
#include <functional>
#include <set>
#include <utility>

namespace rulekit::regex {

namespace {

// AST for `.*` over any byte (including '\n'): used to turn unanchored
// search semantics into an anchored language.
AstRef DotStarAnyByte() {
  std::bitset<256> all;
  all.set();
  return AstNode::Repeat(AstNode::Class(all), 0, kUnbounded);
}

// Compile `.* <ast> .*` to a program (captures stripped).
Result<Program> CompileSearchWrapped(const AstNode& root) {
  std::vector<AstRef> seq;
  seq.push_back(DotStarAnyByte());
  seq.push_back(root.Clone());
  seq.push_back(DotStarAnyByte());
  AstRef wrapped = AstNode::Concat(std::move(seq));
  return CompileProgram(*wrapped, /*num_captures=*/0, CompileOptions{});
}

// Product-automaton reachability: visits all reachable (sa, sb) pairs and
// invokes `predicate`; returns true if any visited pair satisfies it.
// Dead states (-1) are legal inputs to the predicate.
bool ProductSearch(const Dfa& da, const Dfa& db,
                   const std::function<bool(int32_t, int32_t)>& predicate) {
  std::set<std::pair<int32_t, int32_t>> visited;
  std::deque<std::pair<int32_t, int32_t>> queue;
  auto push = [&](int32_t a, int32_t b) {
    if (a == Dfa::kDeadState && b == Dfa::kDeadState) return;
    if (visited.emplace(a, b).second) queue.emplace_back(a, b);
  };
  push(da.start_state(), db.start_state());
  const uint16_t num_classes = da.classes().num_classes;
  while (!queue.empty()) {
    auto [sa, sb] = queue.front();
    queue.pop_front();
    if (predicate(sa, sb)) return true;
    for (uint16_t c = 0; c < num_classes; ++c) {
      int32_t na = sa == Dfa::kDeadState ? Dfa::kDeadState
                                         : da.NextClass(sa, c);
      int32_t nb = sb == Dfa::kDeadState ? Dfa::kDeadState
                                         : db.NextClass(sb, c);
      push(na, nb);
    }
  }
  return false;
}

struct DfaPair {
  Dfa a;
  Dfa b;
};

// Builds both DFAs over a joint byte-class partition.
Result<DfaPair> BuildPair(const Program& pa, const Program& pb,
                          const ContainmentOptions& options) {
  ByteClasses classes = ComputeByteClasses({&pa, &pb});
  auto da = Dfa::Build(pa, classes, options.max_dfa_states);
  if (!da.ok()) return da.status();
  auto db = Dfa::Build(pb, classes, options.max_dfa_states);
  if (!db.ok()) return db.status();
  return DfaPair{std::move(da).value(), std::move(db).value()};
}

Result<bool> SubsetOfPrograms(const Program& pa, const Program& pb,
                              const ContainmentOptions& options) {
  auto pair = BuildPair(pa, pb, options);
  if (!pair.ok()) return pair.status();
  // L(a) ⊆ L(b) iff no reachable product state accepts in a but not b.
  bool counterexample =
      ProductSearch(pair->a, pair->b, [&](int32_t sa, int32_t sb) {
        return pair->a.IsAccepting(sa) && !pair->b.IsAccepting(sb);
      });
  return !counterexample;
}

}  // namespace

Result<bool> LanguageSubset(const Regex& a, const Regex& b,
                            const ContainmentOptions& options) {
  return SubsetOfPrograms(a.program(), b.program(), options);
}

Result<bool> SearchSubsumes(const Regex& narrow, const Regex& broad,
                            const ContainmentOptions& options) {
  auto pa = CompileSearchWrapped(narrow.ast());
  if (!pa.ok()) return pa.status();
  auto pb = CompileSearchWrapped(broad.ast());
  if (!pb.ok()) return pb.status();
  return SubsetOfPrograms(*pa, *pb, options);
}

Result<bool> LanguagesIntersect(const Regex& a, const Regex& b,
                                const ContainmentOptions& options) {
  auto pair = BuildPair(a.program(), b.program(), options);
  if (!pair.ok()) return pair.status();
  bool witness =
      ProductSearch(pair->a, pair->b, [&](int32_t sa, int32_t sb) {
        return pair->a.IsAccepting(sa) && pair->b.IsAccepting(sb);
      });
  return witness;
}

}  // namespace rulekit::regex
