#include "src/regex/ast.h"

#include <utility>

#include "src/common/string_util.h"

namespace rulekit::regex {

AstRef AstNode::Empty() {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kEmpty;
  return n;
}

AstRef AstNode::Literal(char c) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kLiteral;
  n->literal = c;
  return n;
}

AstRef AstNode::Class(std::bitset<256> cls) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kClass;
  n->char_class = cls;
  return n;
}

AstRef AstNode::Any() {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kAny;
  return n;
}

AstRef AstNode::Concat(std::vector<AstRef> children) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kConcat;
  n->children = std::move(children);
  return n;
}

AstRef AstNode::Alternate(std::vector<AstRef> children) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kAlternate;
  n->children = std::move(children);
  return n;
}

AstRef AstNode::Repeat(AstRef child, int min, int max) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kRepeat;
  n->child = std::move(child);
  n->min = min;
  n->max = max;
  return n;
}

AstRef AstNode::Group(AstRef child, int capture_index) {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kGroup;
  n->child = std::move(child);
  n->capture_index = capture_index;
  return n;
}

AstRef AstNode::AnchorBegin() {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kAnchorBegin;
  return n;
}

AstRef AstNode::AnchorEnd() {
  auto n = std::make_unique<AstNode>();
  n->kind = AstKind::kAnchorEnd;
  return n;
}

AstRef AstNode::Clone() const {
  auto n = std::make_unique<AstNode>();
  n->kind = kind;
  n->literal = literal;
  n->char_class = char_class;
  n->min = min;
  n->max = max;
  n->capture_index = capture_index;
  for (const auto& c : children) n->children.push_back(c->Clone());
  if (child) n->child = child->Clone();
  return n;
}

namespace {

std::string ClassToString(const std::bitset<256>& cls) {
  if (cls == WordClass()) return "\\w";
  if (cls == DigitClass()) return "\\d";
  if (cls == SpaceClass()) return "\\s";
  std::string out = "[";
  int i = 0;
  while (i < 256) {
    if (!cls.test(static_cast<size_t>(i))) {
      ++i;
      continue;
    }
    int j = i;
    while (j + 1 < 256 && cls.test(static_cast<size_t>(j + 1))) ++j;
    auto emit = [&](int c) {
      if (c >= 0x20 && c < 0x7f) {
        out += static_cast<char>(c);
      } else {
        out += StrFormat("\\x%02x", c);
      }
    };
    emit(i);
    if (j > i) {
      if (j > i + 1) out += '-';
      emit(j);
    }
    i = j + 1;
  }
  out += "]";
  return out;
}

}  // namespace

std::string AstNode::ToString() const {
  switch (kind) {
    case AstKind::kEmpty:
      return "";
    case AstKind::kLiteral: {
      std::string out;
      static const char kMeta[] = "\\^$.|?*+()[]{}";
      for (const char* m = kMeta; *m; ++m) {
        if (*m == literal) out += '\\';
      }
      out += literal;
      return out;
    }
    case AstKind::kClass:
      return ClassToString(char_class);
    case AstKind::kAny:
      return ".";
    case AstKind::kConcat: {
      std::string out;
      for (const auto& c : children) {
        if (c->kind == AstKind::kAlternate) {
          out += "(?:" + c->ToString() + ")";
        } else {
          out += c->ToString();
        }
      }
      return out;
    }
    case AstKind::kAlternate: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += "|";
        out += children[i]->ToString();
      }
      return out;
    }
    case AstKind::kRepeat: {
      std::string inner = child->ToString();
      bool atomic = child->kind == AstKind::kLiteral ||
                    child->kind == AstKind::kClass ||
                    child->kind == AstKind::kAny ||
                    child->kind == AstKind::kGroup;
      if (!atomic) inner = "(?:" + inner + ")";
      if (min == 0 && max == kUnbounded) return inner + "*";
      if (min == 1 && max == kUnbounded) return inner + "+";
      if (min == 0 && max == 1) return inner + "?";
      if (max == kUnbounded) return inner + StrFormat("{%d,}", min);
      if (min == max) return inner + StrFormat("{%d}", min);
      return inner + StrFormat("{%d,%d}", min, max);
    }
    case AstKind::kGroup:
      return (capture_index >= 0 ? "(" : "(?:") + child->ToString() + ")";
    case AstKind::kAnchorBegin:
      return "^";
    case AstKind::kAnchorEnd:
      return "$";
  }
  return "";
}

std::bitset<256> WordClass() {
  std::bitset<256> cls;
  for (int c = '0'; c <= '9'; ++c) cls.set(static_cast<size_t>(c));
  for (int c = 'a'; c <= 'z'; ++c) cls.set(static_cast<size_t>(c));
  for (int c = 'A'; c <= 'Z'; ++c) cls.set(static_cast<size_t>(c));
  cls.set('_');
  return cls;
}

std::bitset<256> DigitClass() {
  std::bitset<256> cls;
  for (int c = '0'; c <= '9'; ++c) cls.set(static_cast<size_t>(c));
  return cls;
}

std::bitset<256> SpaceClass() {
  std::bitset<256> cls;
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    cls.set(static_cast<size_t>(static_cast<unsigned char>(c)));
  }
  return cls;
}

std::bitset<256> NegateClass(const std::bitset<256>& cls) { return ~cls; }

}  // namespace rulekit::regex
