#ifndef RULEKIT_REGEX_NFA_H_
#define RULEKIT_REGEX_NFA_H_

#include <bitset>
#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/regex/ast.h"

namespace rulekit::regex {

/// One instruction of the compiled NFA program (Thompson construction,
/// instruction-list representation in the style of RE2's Prog / Russ Cox's
/// "Regular Expression Matching: the Virtual Machine Approach").
struct Inst {
  enum class Op : uint8_t {
    kByte,         // consume one byte in `bytes`, go to next
    kSplit,        // fork to next and next2 (next has higher priority)
    kJmp,          // go to next
    kSave,         // record current position in capture slot `slot`
    kAssertBegin,  // succeed only at text start
    kAssertEnd,    // succeed only at text end
    kMatch,        // accept
  };

  Op op = Op::kMatch;
  std::bitset<256> bytes;  // kByte only
  uint32_t next = 0;
  uint32_t next2 = 0;  // kSplit only
  int slot = -1;       // kSave only
};

/// A compiled NFA program.
struct Program {
  std::vector<Inst> insts;
  uint32_t start = 0;
  int num_captures = 0;     // capturing groups; slots = 2*(num_captures+1)
  bool has_assertions = false;

  int num_slots() const { return 2 * (num_captures + 1); }
};

/// Limits for compilation; repetition expansion can blow up the program.
struct CompileOptions {
  size_t max_instructions = 20000;
};

/// Compile an AST into an NFA program. Slot 0/1 delimit the whole match;
/// group i uses slots 2i+2 and 2i+3.
Result<Program> CompileProgram(const AstNode& root, int num_captures,
                               const CompileOptions& options = {});

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_NFA_H_
