#include "src/regex/analysis.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <set>

namespace rulekit::regex {

namespace {

// The set of strings a node can match exactly, when that set is small and
// bounded; nullopt when unbounded or too large. Strings may include "".
using ExactSet = std::optional<std::vector<std::string>>;

// A prefilter candidate: every match contains >= 1 of these (all nonempty).
using Alternatives = std::optional<std::vector<std::string>>;

struct Analyzer {
  const AnalysisOptions& options;

  // Expands a byte class into its characters if small enough.
  std::optional<std::vector<char>> ClassChars(
      const std::bitset<256>& cls) const {
    std::vector<char> chars;
    for (int b = 0; b < 256; ++b) {
      if (!cls.test(static_cast<size_t>(b))) continue;
      chars.push_back(static_cast<char>(b));
      if (chars.size() > options.max_class_expansion) return std::nullopt;
    }
    if (chars.empty()) return std::nullopt;
    // A case-folded letter pair {x, X} counts as one char (lowercase).
    if (chars.size() == 2 &&
        std::tolower(static_cast<unsigned char>(chars[0])) ==
            std::tolower(static_cast<unsigned char>(chars[1])) &&
        std::isalpha(static_cast<unsigned char>(chars[0]))) {
      return std::vector<char>{static_cast<char>(
          std::tolower(static_cast<unsigned char>(chars[0])))};
    }
    return chars;
  }

  ExactSet Exact(const AstNode& node) const {
    switch (node.kind) {
      case AstKind::kEmpty:
        return std::vector<std::string>{""};
      case AstKind::kLiteral:
        return std::vector<std::string>{std::string(
            1, static_cast<char>(std::tolower(
                   static_cast<unsigned char>(node.literal))))};
      case AstKind::kClass: {
        auto chars = ClassChars(node.char_class);
        if (!chars) return std::nullopt;
        std::vector<std::string> out;
        for (char c : *chars) {
          out.emplace_back(1, static_cast<char>(std::tolower(
                                  static_cast<unsigned char>(c))));
        }
        return out;
      }
      case AstKind::kAny:
      case AstKind::kAnchorBegin:
      case AstKind::kAnchorEnd:
        return std::nullopt;
      case AstKind::kGroup:
        return Exact(*node.child);
      case AstKind::kConcat: {
        std::vector<std::string> acc{""};
        for (const auto& c : node.children) {
          auto part = Exact(*c);
          if (!part) return std::nullopt;
          std::vector<std::string> next;
          for (const auto& a : acc) {
            for (const auto& p : *part) {
              if (a.size() + p.size() > options.max_literal_length) {
                return std::nullopt;
              }
              next.push_back(a + p);
              if (next.size() > options.max_alternatives) {
                return std::nullopt;
              }
            }
          }
          acc = std::move(next);
        }
        return acc;
      }
      case AstKind::kAlternate: {
        std::vector<std::string> out;
        for (const auto& c : node.children) {
          auto part = Exact(*c);
          if (!part) return std::nullopt;
          out.insert(out.end(), part->begin(), part->end());
          if (out.size() > options.max_alternatives) return std::nullopt;
        }
        return out;
      }
      case AstKind::kRepeat: {
        if (node.max == kUnbounded || node.max > 4) return std::nullopt;
        auto part = Exact(*node.child);
        if (!part) return std::nullopt;
        std::vector<std::string> out;
        // All concatenations of k copies, for k in [min, max].
        std::vector<std::string> acc{""};
        for (int k = 0; k < node.max; ++k) {
          if (k >= node.min) {
            out.insert(out.end(), acc.begin(), acc.end());
          }
          std::vector<std::string> next;
          for (const auto& a : acc) {
            for (const auto& p : *part) {
              if (a.size() + p.size() > options.max_literal_length) {
                return std::nullopt;
              }
              next.push_back(a + p);
              if (next.size() > options.max_alternatives) {
                return std::nullopt;
              }
            }
          }
          acc = std::move(next);
        }
        out.insert(out.end(), acc.begin(), acc.end());
        if (node.min == 0) out.emplace_back("");
        if (out.size() > options.max_alternatives) return std::nullopt;
        return out;
      }
    }
    return std::nullopt;
  }

  // Score of an alternatives set: (min length, -count). Larger is better.
  static std::pair<size_t, int64_t> Score(const std::vector<std::string>& v) {
    size_t min_len = static_cast<size_t>(-1);
    for (const auto& s : v) min_len = std::min(min_len, s.size());
    return {min_len, -static_cast<int64_t>(v.size())};
  }

  static Alternatives Better(Alternatives a, Alternatives b) {
    if (!a) return b;
    if (!b) return a;
    return Score(*a) >= Score(*b) ? a : b;
  }

  // Deduplicates and drops alternatives that contain another alternative as
  // a substring (keeping the shorter is sound: "contains s" is implied).
  static std::vector<std::string> Minimize(std::vector<std::string> v) {
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return a.size() < b.size() || (a.size() == b.size() && a < b);
    });
    std::vector<std::string> kept;
    for (const auto& s : v) {
      bool redundant = false;
      for (const auto& k : kept) {
        if (s.find(k) != std::string::npos) {
          redundant = true;
          break;
        }
      }
      if (!redundant && (kept.empty() || s != kept.back())) kept.push_back(s);
    }
    return kept;
  }

  // An exact set with no empty string is itself a (best possible)
  // required-alternatives set.
  static Alternatives AsAlternatives(const ExactSet& es) {
    if (!es) return std::nullopt;
    for (const auto& s : *es) {
      if (s.empty()) return std::nullopt;
    }
    return *es;
  }

  Alternatives Required(const AstNode& node) const {
    switch (node.kind) {
      case AstKind::kEmpty:
      case AstKind::kAny:
      case AstKind::kAnchorBegin:
      case AstKind::kAnchorEnd:
        return std::nullopt;
      case AstKind::kLiteral:
      case AstKind::kClass:
        return AsAlternatives(Exact(node));
      case AstKind::kGroup:
        return Required(*node.child);
      case AstKind::kRepeat:
        if (node.min >= 1) return Required(*node.child);
        return std::nullopt;
      case AstKind::kAlternate: {
        std::vector<std::string> out;
        for (const auto& c : node.children) {
          auto part = Required(*c);
          if (!part) return std::nullopt;
          out.insert(out.end(), part->begin(), part->end());
          if (out.size() > options.max_alternatives) return std::nullopt;
        }
        return out;
      }
      case AstKind::kConcat: {
        // Greedy literal runs: stretches of children whose Exact sets can
        // be cross-multiplied give long literals; each run (without "") is
        // a candidate. Children outside runs contribute their own Required
        // sets as candidates.
        Alternatives best;
        std::vector<std::string> run{""};
        bool run_live = true;
        auto close_run = [&]() {
          if (run_live && !(run.size() == 1 && run[0].empty())) {
            best = Better(best, AsAlternatives(run));
          }
          run = {""};
          run_live = true;
        };
        for (const auto& c : node.children) {
          auto part = Exact(*c);
          bool extended = false;
          if (part) {
            std::vector<std::string> next;
            bool ok = true;
            for (const auto& a : run) {
              for (const auto& p : *part) {
                if (a.size() + p.size() > options.max_literal_length ||
                    next.size() >= options.max_alternatives) {
                  ok = false;
                  break;
                }
                next.push_back(a + p);
              }
              if (!ok) break;
            }
            if (ok) {
              run = std::move(next);
              extended = true;
            }
          }
          if (!extended) {
            close_run();
            best = Better(best, Required(*c));
          }
        }
        close_run();
        return best;
      }
    }
    return std::nullopt;
  }

  // Collects every valid required-alternatives set instead of just the
  // best-scoring one. Mirrors Required(): for a concatenation, every
  // closed literal run is a candidate and every non-extending child's
  // candidates are candidates of the whole.
  void CollectCandidates(const AstNode& node,
                         std::vector<std::vector<std::string>>& out) const {
    switch (node.kind) {
      case AstKind::kGroup:
        CollectCandidates(*node.child, out);
        return;
      case AstKind::kRepeat:
        if (node.min >= 1) CollectCandidates(*node.child, out);
        return;
      case AstKind::kConcat: {
        std::vector<std::string> run{""};
        auto close_run = [&]() {
          if (!(run.size() == 1 && run[0].empty())) {
            if (auto alts = AsAlternatives(run)) out.push_back(*alts);
          }
          run = {""};
        };
        for (const auto& c : node.children) {
          auto part = Exact(*c);
          bool extended = false;
          if (part) {
            std::vector<std::string> next;
            bool ok = true;
            for (const auto& a : run) {
              for (const auto& p : *part) {
                if (a.size() + p.size() > options.max_literal_length ||
                    next.size() >= options.max_alternatives) {
                  ok = false;
                  break;
                }
                next.push_back(a + p);
              }
              if (!ok) break;
            }
            if (ok) {
              run = std::move(next);
              extended = true;
            }
          }
          if (!extended) {
            close_run();
            CollectCandidates(*c, out);
          }
        }
        close_run();
        return;
      }
      default:
        if (auto alts = Required(node)) out.push_back(*alts);
        return;
    }
  }
};

}  // namespace

Result<std::vector<std::string>> RequiredAlternativesOf(
    const AstNode& root, const AnalysisOptions& options) {
  Analyzer analyzer{options};
  auto alts = analyzer.Required(root);
  if (!alts) {
    return Status::NotFound("no required literal set exists");
  }
  auto minimized = Analyzer::Minimize(std::move(*alts));
  auto [min_len, neg_count] = Analyzer::Score(minimized);
  (void)neg_count;
  if (minimized.empty() || min_len < options.min_length) {
    return Status::NotFound("required literals too short to be useful");
  }
  return minimized;
}

Result<std::vector<std::string>> RequiredAlternatives(
    const Regex& re, const AnalysisOptions& options) {
  return RequiredAlternativesOf(re.ast(), options);
}

Result<std::vector<std::vector<std::string>>> CandidateAlternativeSets(
    const AstNode& root, const AnalysisOptions& options) {
  Analyzer analyzer{options};
  std::vector<std::vector<std::string>> raw;
  analyzer.CollectCandidates(root, raw);
  std::vector<std::vector<std::string>> sets;
  for (auto& candidate : raw) {
    auto minimized = Analyzer::Minimize(std::move(candidate));
    if (minimized.empty()) continue;
    auto [min_len, neg_count] = Analyzer::Score(minimized);
    (void)neg_count;
    if (min_len < options.min_length) continue;
    if (std::find(sets.begin(), sets.end(), minimized) != sets.end()) continue;
    sets.push_back(std::move(minimized));
  }
  std::stable_sort(sets.begin(), sets.end(),
                   [](const auto& a, const auto& b) {
                     return Analyzer::Score(a) > Analyzer::Score(b);
                   });
  if (sets.empty()) {
    return Status::NotFound("no required literal set exists");
  }
  return sets;
}

bool ContainsAnchor(const AstNode& root) {
  switch (root.kind) {
    case AstKind::kAnchorBegin:
    case AstKind::kAnchorEnd:
      return true;
    case AstKind::kGroup:
    case AstKind::kRepeat:
      return ContainsAnchor(*root.child);
    case AstKind::kConcat:
    case AstKind::kAlternate:
      for (const auto& c : root.children) {
        if (ContainsAnchor(*c)) return true;
      }
      return false;
    default:
      return false;
  }
}

std::string SampleWitness(const AstNode& root) {
  switch (root.kind) {
    case AstKind::kEmpty:
    case AstKind::kAnchorBegin:
    case AstKind::kAnchorEnd:
      return "";
    case AstKind::kLiteral:
      return std::string(1, root.literal);
    case AstKind::kClass: {
      int first = -1;
      for (int b = 0; b < 256; ++b) {
        if (!root.char_class.test(static_cast<size_t>(b))) continue;
        if (first < 0) first = b;
        if (std::isalnum(b)) return std::string(1, static_cast<char>(b));
      }
      // An empty class matches nothing; "" is as good a non-witness as any.
      return first < 0 ? std::string()
                       : std::string(1, static_cast<char>(first));
    }
    case AstKind::kAny:
      return "a";
    case AstKind::kGroup:
      return SampleWitness(*root.child);
    case AstKind::kRepeat: {
      std::string part = SampleWitness(*root.child);
      std::string out;
      for (int k = 0; k < root.min; ++k) out += part;
      return out;
    }
    case AstKind::kConcat: {
      std::string out;
      for (const auto& c : root.children) out += SampleWitness(*c);
      return out;
    }
    case AstKind::kAlternate: {
      std::string best;
      bool have = false;
      for (const auto& c : root.children) {
        std::string w = SampleWitness(*c);
        if (!have || w.size() < best.size()) {
          best = std::move(w);
          have = true;
        }
      }
      return best;
    }
  }
  return "";
}

}  // namespace rulekit::regex
