#include "src/regex/dfa.h"

#include <algorithm>
#include <map>

namespace rulekit::regex {

ByteClasses ComputeByteClasses(const std::vector<const Program*>& programs) {
  // Signature of a byte = the vector of memberships across all distinct
  // byte sets in the programs. Bytes with equal signatures are equivalent.
  std::vector<const std::bitset<256>*> sets;
  for (const Program* p : programs) {
    for (const Inst& inst : p->insts) {
      if (inst.op == Inst::Op::kByte) sets.push_back(&inst.bytes);
    }
  }
  std::map<std::vector<bool>, uint16_t> signature_to_class;
  ByteClasses out;
  for (int b = 0; b < 256; ++b) {
    std::vector<bool> sig;
    sig.reserve(sets.size());
    for (const auto* s : sets) sig.push_back(s->test(static_cast<size_t>(b)));
    auto [it, inserted] = signature_to_class.emplace(
        std::move(sig), static_cast<uint16_t>(signature_to_class.size()));
    out.class_of[static_cast<size_t>(b)] = it->second;
  }
  out.num_classes = static_cast<uint16_t>(signature_to_class.size());
  return out;
}

namespace {

// Epsilon closure of a pc set: returns the sorted set of kByte/kMatch pcs.
std::vector<uint32_t> Closure(const Program& prog,
                              const std::vector<uint32_t>& seeds) {
  std::vector<bool> seen(prog.insts.size(), false);
  std::vector<uint32_t> stack(seeds.begin(), seeds.end());
  std::vector<uint32_t> out;
  while (!stack.empty()) {
    uint32_t pc = stack.back();
    stack.pop_back();
    if (seen[pc]) continue;
    seen[pc] = true;
    const Inst& inst = prog.insts[pc];
    switch (inst.op) {
      case Inst::Op::kJmp:
      case Inst::Op::kSave:
        stack.push_back(inst.next);
        break;
      case Inst::Op::kSplit:
        stack.push_back(inst.next);
        stack.push_back(inst.next2);
        break;
      case Inst::Op::kByte:
      case Inst::Op::kMatch:
        out.push_back(pc);
        break;
      case Inst::Op::kAssertBegin:
      case Inst::Op::kAssertEnd:
        // Rejected by Build() before we get here.
        break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<Dfa> Dfa::Build(const Program& program, const ByteClasses& classes,
                       size_t max_states) {
  if (program.has_assertions) {
    return Status::FailedPrecondition(
        "DFA construction does not support ^/$ assertions");
  }
  Dfa dfa;
  dfa.classes_ = classes;

  // Representative byte for each class, for stepping byte sets.
  std::vector<unsigned char> rep(classes.num_classes, 0);
  for (int b = 255; b >= 0; --b) {
    rep[classes.class_of[static_cast<size_t>(b)]] =
        static_cast<unsigned char>(b);
  }

  std::map<std::vector<uint32_t>, int32_t> state_ids;
  std::vector<std::vector<uint32_t>> states;

  auto intern = [&](std::vector<uint32_t> set) -> int32_t {
    if (set.empty()) return kDeadState;
    auto it = state_ids.find(set);
    if (it != state_ids.end()) return it->second;
    int32_t id = static_cast<int32_t>(states.size());
    state_ids.emplace(set, id);
    states.push_back(std::move(set));
    return id;
  };

  int32_t start = intern(Closure(program, {program.start}));
  dfa.start_ = start;
  if (start == kDeadState) {
    dfa.accepting_.clear();
    return dfa;
  }

  for (size_t si = 0; si < states.size(); ++si) {
    if (states.size() > max_states) {
      return Status::ResourceExhausted("DFA state limit exceeded");
    }
    for (uint16_t c = 0; c < classes.num_classes; ++c) {
      unsigned char byte = rep[c];
      std::vector<uint32_t> seeds;
      for (uint32_t pc : states[si]) {
        const Inst& inst = program.insts[pc];
        if (inst.op == Inst::Op::kByte &&
            inst.bytes.test(static_cast<size_t>(byte))) {
          seeds.push_back(inst.next);
        }
      }
      int32_t target = intern(Closure(program, seeds));
      dfa.transitions_.push_back(target);
    }
  }

  dfa.accepting_.resize(states.size(), false);
  for (size_t si = 0; si < states.size(); ++si) {
    for (uint32_t pc : states[si]) {
      if (program.insts[pc].op == Inst::Op::kMatch) {
        dfa.accepting_[si] = true;
        break;
      }
    }
  }
  return dfa;
}

int32_t Dfa::Next(int32_t state, unsigned char byte) const {
  if (state == kDeadState) return kDeadState;
  return NextClass(state, classes_.class_of[byte]);
}

int32_t Dfa::NextClass(int32_t state, uint16_t cls) const {
  if (state == kDeadState) return kDeadState;
  return transitions_[static_cast<size_t>(state) * classes_.num_classes +
                      cls];
}

bool Dfa::Matches(std::string_view text) const {
  int32_t state = start_;
  for (char c : text) {
    state = Next(state, static_cast<unsigned char>(c));
    if (state == kDeadState) return false;
  }
  return IsAccepting(state);
}

}  // namespace rulekit::regex
