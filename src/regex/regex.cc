#include "src/regex/regex.h"

#include <algorithm>
#include <cassert>

namespace rulekit::regex {

namespace {

constexpr size_t kNoPos = Span::kNoPos;

// ---------------------------------------------------------------------------
// Pike VM: NFA simulation with capture slots, leftmost-first semantics.
// Follows Russ Cox's pike.c ("Regular Expression Matching: the Virtual
// Machine Approach").
// ---------------------------------------------------------------------------

struct Thread {
  uint32_t pc;
  std::vector<size_t> caps;
};

class ThreadList {
 public:
  explicit ThreadList(size_t num_insts)
      : seen_(num_insts, 0) {}

  void Clear() { threads_.clear(); ++generation_; }

  bool Mark(uint32_t pc) {
    if (seen_[pc] == generation_) return false;
    seen_[pc] = generation_;
    return true;
  }

  void Push(uint32_t pc, std::vector<size_t> caps) {
    threads_.push_back({pc, std::move(caps)});
  }

  std::vector<Thread>& threads() { return threads_; }

 private:
  std::vector<Thread> threads_;
  std::vector<uint64_t> seen_;
  uint64_t generation_ = 1;
};

// Adds `pc` (with epsilon closure) to `list` for text position `pos`.
void AddThread(const Program& prog, ThreadList& list, uint32_t pc, size_t pos,
               size_t text_len, std::vector<size_t> caps) {
  struct Item {
    uint32_t pc;
    std::vector<size_t> caps;
  };
  std::vector<Item> stack;
  stack.push_back({pc, std::move(caps)});
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (!list.Mark(item.pc)) continue;
    const Inst& inst = prog.insts[item.pc];
    switch (inst.op) {
      case Inst::Op::kJmp:
        stack.push_back({inst.next, std::move(item.caps)});
        break;
      case Inst::Op::kSplit:
        // next has priority over next2; since the stack is LIFO, push next2
        // first so next is processed (and marked) first.
        stack.push_back({inst.next2, item.caps});
        stack.push_back({inst.next, std::move(item.caps)});
        break;
      case Inst::Op::kSave: {
        std::vector<size_t> caps2 = std::move(item.caps);
        if (inst.slot >= 0 &&
            static_cast<size_t>(inst.slot) < caps2.size()) {
          caps2[static_cast<size_t>(inst.slot)] = pos;
        }
        stack.push_back({inst.next, std::move(caps2)});
        break;
      }
      case Inst::Op::kAssertBegin:
        if (pos == 0) stack.push_back({inst.next, std::move(item.caps)});
        break;
      case Inst::Op::kAssertEnd:
        if (pos == text_len) {
          stack.push_back({inst.next, std::move(item.caps)});
        }
        break;
      case Inst::Op::kByte:
      case Inst::Op::kMatch:
        list.Push(item.pc, std::move(item.caps));
        break;
    }
  }
}

// AddThread pushes epsilon-closure items onto a LIFO stack, which reverses
// sibling priority when one item expands to several (kSplit pushes next2
// then next, so next pops first — correct). However, when expanding a chain,
// children are processed immediately (depth-first), which matches the
// recursive formulation, so priority order is preserved.

std::optional<Match> PikeFind(const Program& prog, std::string_view text,
                              size_t start, bool anchored) {
  const size_t nslots = static_cast<size_t>(prog.num_slots());
  ThreadList clist(prog.insts.size()), nlist(prog.insts.size());
  clist.Clear();
  nlist.Clear();

  std::vector<size_t> matched;
  bool has_match = false;

  for (size_t pos = start; pos <= text.size(); ++pos) {
    if (!has_match && (pos == start || !anchored)) {
      AddThread(prog, clist, prog.start, pos, text.size(),
                std::vector<size_t>(nslots, kNoPos));
    }
    auto& threads = clist.threads();
    for (size_t i = 0; i < threads.size(); ++i) {
      Thread& t = threads[i];
      const Inst& inst = prog.insts[t.pc];
      if (inst.op == Inst::Op::kByte) {
        if (pos < text.size() &&
            inst.bytes.test(static_cast<unsigned char>(text[pos]))) {
          AddThread(prog, nlist, inst.next, pos + 1, text.size(),
                    std::move(t.caps));
        }
      } else if (inst.op == Inst::Op::kMatch) {
        matched = std::move(t.caps);
        has_match = true;
        // Lower-priority threads are cut off: leftmost-first semantics.
        break;
      }
    }
    std::swap(clist, nlist);
    nlist.Clear();
    // Once a match is recorded no new start threads are injected, and in
    // anchored mode none are injected after `start`; with no live threads
    // the outcome cannot change.
    if (clist.threads().empty() && (has_match || anchored)) break;
  }

  if (!has_match) return std::nullopt;
  Match m;
  m.overall = {matched[0], matched[1]};
  m.groups.resize(static_cast<size_t>(prog.num_captures));
  for (int g = 0; g < prog.num_captures; ++g) {
    size_t b = matched[static_cast<size_t>(2 * g + 2)];
    size_t e = matched[static_cast<size_t>(2 * g + 3)];
    m.groups[static_cast<size_t>(g)] = {b, e};
  }
  return m;
}

// ---------------------------------------------------------------------------
// Boolean Thompson VM: no captures, used for the PartialMatch/FullMatch fast
// paths.
// ---------------------------------------------------------------------------

class PcList {
 public:
  explicit PcList(size_t num_insts) : seen_(num_insts, 0) {}

  void Clear() {
    pcs_.clear();
    ++generation_;
  }
  bool Mark(uint32_t pc) {
    if (seen_[pc] == generation_) return false;
    seen_[pc] = generation_;
    return true;
  }
  void Push(uint32_t pc) { pcs_.push_back(pc); }
  const std::vector<uint32_t>& pcs() const { return pcs_; }

 private:
  std::vector<uint32_t> pcs_;
  std::vector<uint64_t> seen_;
  uint64_t generation_ = 1;
};

// Returns true if a Match instruction is in the closure (subject to the
// `at_end` constraint for full matches, checked by the caller via flag).
void AddPc(const Program& prog, PcList& list, uint32_t pc, size_t pos,
           size_t text_len) {
  std::vector<uint32_t> stack{pc};
  while (!stack.empty()) {
    uint32_t p = stack.back();
    stack.pop_back();
    if (!list.Mark(p)) continue;
    const Inst& inst = prog.insts[p];
    switch (inst.op) {
      case Inst::Op::kJmp:
        stack.push_back(inst.next);
        break;
      case Inst::Op::kSplit:
        stack.push_back(inst.next2);
        stack.push_back(inst.next);
        break;
      case Inst::Op::kSave:
        stack.push_back(inst.next);
        break;
      case Inst::Op::kAssertBegin:
        if (pos == 0) stack.push_back(inst.next);
        break;
      case Inst::Op::kAssertEnd:
        if (pos == text_len) stack.push_back(inst.next);
        break;
      case Inst::Op::kByte:
      case Inst::Op::kMatch:
        list.Push(p);
        break;
    }
  }
}

bool BooleanRun(const Program& prog, std::string_view text, bool full) {
  PcList clist(prog.insts.size()), nlist(prog.insts.size());
  clist.Clear();
  nlist.Clear();
  for (size_t pos = 0; pos <= text.size(); ++pos) {
    if (pos == 0 || !full) {
      AddPc(prog, clist, prog.start, pos, text.size());
    }
    for (uint32_t pc : clist.pcs()) {
      const Inst& inst = prog.insts[pc];
      if (inst.op == Inst::Op::kMatch) {
        if (!full || pos == text.size()) return true;
      } else if (inst.op == Inst::Op::kByte) {
        if (pos < text.size() &&
            inst.bytes.test(static_cast<unsigned char>(text[pos]))) {
          AddPc(prog, nlist, inst.next, pos + 1, text.size());
        }
      }
    }
    // In full mode no threads are injected after position 0, so an empty
    // next list means no match is possible.
    if (full && nlist.pcs().empty()) return false;
    std::swap(clist, nlist);
    nlist.Clear();
  }
  return false;
}

}  // namespace

namespace {

// Builds the DFA of ".*<root>" (any-byte star), used as the PartialMatch
// fast path. Returns nullopt when the pattern has assertions or the
// subset construction exceeds the cap.
std::optional<Dfa> BuildSearchDfa(const AstNode& root) {
  std::bitset<256> all;
  all.set();
  std::vector<AstRef> seq;
  seq.push_back(AstNode::Repeat(AstNode::Class(all), 0, kUnbounded));
  seq.push_back(root.Clone());
  AstRef wrapped = AstNode::Concat(std::move(seq));
  auto program = CompileProgram(*wrapped, /*num_captures=*/0,
                                CompileOptions{});
  if (!program.ok()) return std::nullopt;
  ByteClasses classes = ComputeByteClasses({&*program});
  auto dfa = Dfa::Build(*program, classes, /*max_states=*/2000);
  if (!dfa.ok()) return std::nullopt;
  return std::move(dfa).value();
}

}  // namespace

Result<Regex> Regex::Compile(std::string_view pattern,
                             const ParseOptions& options) {
  auto parsed = Parse(pattern, options);
  if (!parsed.ok()) return parsed.status();
  auto program =
      CompileProgram(*parsed->root, parsed->num_captures, CompileOptions{});
  if (!program.ok()) return program.status();
  auto impl = std::make_shared<Impl>();
  impl->pattern = std::string(pattern);
  impl->options = options;
  impl->ast = std::move(parsed->root);
  impl->program = std::move(program).value();
  impl->search_dfa = BuildSearchDfa(*impl->ast);
  return Regex(std::move(impl));
}

Result<Regex> Regex::CompileCaseFolded(std::string_view pattern) {
  ParseOptions options;
  options.case_insensitive = true;
  return Compile(pattern, options);
}

bool Regex::FullMatch(std::string_view text) const {
  return BooleanRun(impl_->program, text, /*full=*/true);
}

bool Regex::PartialMatch(std::string_view text) const {
  if (impl_->search_dfa.has_value()) {
    // A match exists iff some prefix of text lands in an accepting state
    // of the ".*pattern" DFA.
    const Dfa& dfa = *impl_->search_dfa;
    int32_t state = dfa.start_state();
    if (dfa.IsAccepting(state)) return true;
    for (char c : text) {
      state = dfa.Next(state, static_cast<unsigned char>(c));
      if (state == Dfa::kDeadState) return false;
      if (dfa.IsAccepting(state)) return true;
    }
    return false;
  }
  return BooleanRun(impl_->program, text, /*full=*/false);
}

std::optional<Match> Regex::Find(std::string_view text, size_t start) const {
  if (start > text.size()) return std::nullopt;
  return PikeFind(impl_->program, text, start, /*anchored=*/false);
}

std::vector<Match> Regex::FindAll(std::string_view text) const {
  std::vector<Match> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    auto m = Find(text, pos);
    if (!m.has_value()) break;
    out.push_back(*m);
    size_t next = m->overall.end;
    if (next == pos) ++next;  // avoid stalling on empty matches
    pos = next;
  }
  return out;
}

}  // namespace rulekit::regex
