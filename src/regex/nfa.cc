#include "src/regex/nfa.h"

#include <utility>

namespace rulekit::regex {

namespace {

// Emits instructions for the AST bottom-up. Every Emit* call appends the
// fragment's instructions and returns with the fragment entered at the
// returned pc; dangling exits are wired by the caller via `next`
// placeholders patched at the end of each Emit.
class Compiler {
 public:
  Compiler(const CompileOptions& options) : options_(options) {}

  Result<Program> Compile(const AstNode& root, int num_captures) {
    Program prog;
    prog.num_captures = num_captures;

    // save slot 0, <body>, save slot 1, match
    uint32_t save0 = Append({Inst::Op::kSave, {}, 0, 0, 0});
    Status st = EmitNode(root);
    if (!st.ok()) return st;
    uint32_t save1 = Append({Inst::Op::kSave, {}, 0, 0, 1});
    uint32_t match = Append({Inst::Op::kMatch, {}, 0, 0, -1});
    insts_[save0].next = save0 + 1;
    insts_[save1].next = match;

    prog.insts = std::move(insts_);
    prog.start = save0;
    prog.has_assertions = has_assertions_;
    return prog;
  }

 private:
  // Appends an instruction and returns its pc.
  uint32_t Append(Inst inst) {
    insts_.push_back(std::move(inst));
    return static_cast<uint32_t>(insts_.size() - 1);
  }

  Status CheckBudget() {
    if (insts_.size() > options_.max_instructions) {
      return Status::ResourceExhausted(
          "compiled regex program exceeds instruction limit");
    }
    return Status::OK();
  }

  // Emits code for `node`; on return the fragment occupies
  // [entry, insts_.size()) and control falls through to insts_.size().
  // We achieve "fall through" by always wiring exits to the pc just past
  // the fragment.
  Status EmitNode(const AstNode& node) {
    RULEKIT_RETURN_IF_ERROR(CheckBudget());
    switch (node.kind) {
      case AstKind::kEmpty:
        return Status::OK();
      case AstKind::kLiteral: {
        std::bitset<256> b;
        b.set(static_cast<unsigned char>(node.literal));
        uint32_t pc = Append({Inst::Op::kByte, b, 0, 0, -1});
        insts_[pc].next = pc + 1;
        return Status::OK();
      }
      case AstKind::kClass: {
        uint32_t pc = Append({Inst::Op::kByte, node.char_class, 0, 0, -1});
        insts_[pc].next = pc + 1;
        return Status::OK();
      }
      case AstKind::kAny: {
        std::bitset<256> b;
        b.set();
        b.reset(static_cast<unsigned char>('\n'));
        uint32_t pc = Append({Inst::Op::kByte, b, 0, 0, -1});
        insts_[pc].next = pc + 1;
        return Status::OK();
      }
      case AstKind::kConcat:
        for (const auto& c : node.children) {
          RULEKIT_RETURN_IF_ERROR(EmitNode(*c));
        }
        return Status::OK();
      case AstKind::kAlternate: {
        // split -> branch1 -> jmp end; split2 -> branch2 -> jmp end; ...
        std::vector<uint32_t> jmps;
        std::vector<uint32_t> splits;
        for (size_t i = 0; i < node.children.size(); ++i) {
          bool last = i + 1 == node.children.size();
          uint32_t split = 0;
          if (!last) {
            split = Append({Inst::Op::kSplit, {}, 0, 0, -1});
            splits.push_back(split);
          }
          uint32_t branch_entry = static_cast<uint32_t>(insts_.size());
          RULEKIT_RETURN_IF_ERROR(EmitNode(*node.children[i]));
          if (!last) {
            uint32_t jmp = Append({Inst::Op::kJmp, {}, 0, 0, -1});
            jmps.push_back(jmp);
            insts_[split].next = branch_entry;
            insts_[split].next2 = static_cast<uint32_t>(insts_.size());
          }
        }
        uint32_t end = static_cast<uint32_t>(insts_.size());
        for (uint32_t j : jmps) insts_[j].next = end;
        return Status::OK();
      }
      case AstKind::kRepeat:
        return EmitRepeat(node);
      case AstKind::kGroup: {
        if (node.capture_index >= 0) {
          int slot = 2 * node.capture_index + 2;
          uint32_t s0 = Append({Inst::Op::kSave, {}, 0, 0, slot});
          insts_[s0].next = s0 + 1;
          RULEKIT_RETURN_IF_ERROR(EmitNode(*node.child));
          uint32_t s1 = Append({Inst::Op::kSave, {}, 0, 0, slot + 1});
          insts_[s1].next = s1 + 1;
          return Status::OK();
        }
        return EmitNode(*node.child);
      }
      case AstKind::kAnchorBegin: {
        has_assertions_ = true;
        uint32_t pc = Append({Inst::Op::kAssertBegin, {}, 0, 0, -1});
        insts_[pc].next = pc + 1;
        return Status::OK();
      }
      case AstKind::kAnchorEnd: {
        has_assertions_ = true;
        uint32_t pc = Append({Inst::Op::kAssertEnd, {}, 0, 0, -1});
        insts_[pc].next = pc + 1;
        return Status::OK();
      }
    }
    return Status::Internal("unhandled AST kind");
  }

  Status EmitStar(const AstNode& body) {
    // L1: split L2, L3 ; L2: body ; jmp L1 ; L3:
    uint32_t l1 = Append({Inst::Op::kSplit, {}, 0, 0, -1});
    uint32_t l2 = static_cast<uint32_t>(insts_.size());
    RULEKIT_RETURN_IF_ERROR(EmitNode(body));
    uint32_t jmp = Append({Inst::Op::kJmp, {}, l1, 0, -1});
    (void)jmp;
    uint32_t l3 = static_cast<uint32_t>(insts_.size());
    insts_[l1].next = l2;
    insts_[l1].next2 = l3;
    return Status::OK();
  }

  Status EmitOptional(const AstNode& body) {
    // split L1, L2 ; L1: body ; L2:
    uint32_t split = Append({Inst::Op::kSplit, {}, 0, 0, -1});
    uint32_t l1 = static_cast<uint32_t>(insts_.size());
    RULEKIT_RETURN_IF_ERROR(EmitNode(body));
    uint32_t l2 = static_cast<uint32_t>(insts_.size());
    insts_[split].next = l1;
    insts_[split].next2 = l2;
    return Status::OK();
  }

  Status EmitRepeat(const AstNode& node) {
    const AstNode& body = *node.child;
    // min mandatory copies.
    for (int i = 0; i < node.min; ++i) {
      RULEKIT_RETURN_IF_ERROR(EmitNode(body));
    }
    if (node.max == kUnbounded) {
      return EmitStar(body);
    }
    // (max - min) optional copies.
    for (int i = node.min; i < node.max; ++i) {
      RULEKIT_RETURN_IF_ERROR(EmitOptional(body));
    }
    return Status::OK();
  }

  CompileOptions options_;
  std::vector<Inst> insts_;
  bool has_assertions_ = false;
};

}  // namespace

Result<Program> CompileProgram(const AstNode& root, int num_captures,
                               const CompileOptions& options) {
  return Compiler(options).Compile(root, num_captures);
}

}  // namespace rulekit::regex
