#include "src/regex/parser.h"

#include <cctype>
#include <string>

#include "src/common/string_util.h"

namespace rulekit::regex {

namespace {

// Maximum bound in {m,n} repetitions; larger bounds blow up the compiled
// program, and no hand-written classification rule needs them.
constexpr int kMaxRepeatBound = 256;

class Parser {
 public:
  Parser(std::string_view pattern, const ParseOptions& options)
      : pattern_(pattern), options_(options) {}

  Result<ParsedRegex> Run() {
    auto root = ParseAlternate();
    if (!root.ok()) return root.status();
    if (pos_ != pattern_.size()) {
      return Error("unexpected ')' or trailing input");
    }
    ParsedRegex out{std::move(root).value(), num_captures_};
    return out;
  }

 private:
  Status Error(const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("regex parse error at offset %zu in \"%.*s\": %s", pos_,
                  static_cast<int>(pattern_.size()), pattern_.data(),
                  msg.c_str()));
  }

  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }
  char Take() { return pattern_[pos_++]; }
  bool TryTake(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // alternate := concat ('|' concat)*
  Result<AstRef> ParseAlternate() {
    std::vector<AstRef> branches;
    auto first = ParseConcat();
    if (!first.ok()) return first.status();
    branches.push_back(std::move(first).value());
    while (TryTake('|')) {
      auto next = ParseConcat();
      if (!next.ok()) return next.status();
      branches.push_back(std::move(next).value());
    }
    if (branches.size() == 1) return std::move(branches[0]);
    return AstNode::Alternate(std::move(branches));
  }

  // concat := repeat*
  Result<AstRef> ParseConcat() {
    std::vector<AstRef> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto part = ParseRepeat();
      if (!part.ok()) return part.status();
      parts.push_back(std::move(part).value());
    }
    if (parts.empty()) return AstNode::Empty();
    if (parts.size() == 1) return std::move(parts[0]);
    return AstNode::Concat(std::move(parts));
  }

  // repeat := atom ('*' | '+' | '?' | '{m,n}')*
  Result<AstRef> ParseRepeat() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    AstRef node = std::move(atom).value();
    for (;;) {
      if (AtEnd()) break;
      char c = Peek();
      if (c == '*') {
        Take();
        node = AstNode::Repeat(std::move(node), 0, kUnbounded);
      } else if (c == '+') {
        Take();
        node = AstNode::Repeat(std::move(node), 1, kUnbounded);
      } else if (c == '?') {
        Take();
        node = AstNode::Repeat(std::move(node), 0, 1);
      } else if (c == '{') {
        // A '{' followed by a digit starts a bound and must be well-formed;
        // otherwise '{' is an ordinary literal.
        if (pos_ + 1 >= pattern_.size() ||
            !std::isdigit(static_cast<unsigned char>(pattern_[pos_ + 1]))) {
          break;
        }
        auto bound = ParseBound(node);
        if (!bound.ok()) return bound.status();
        node = std::move(bound).value();
      } else {
        break;
      }
    }
    return node;
  }

  Result<AstRef> ParseBound(AstRef& node) {
    // Caller guarantees Peek() == '{'.
    Take();
    auto parse_int = [&]() -> int {
      int value = -1;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        if (value < 0) value = 0;
        value = value * 10 + (Take() - '0');
        if (value > kMaxRepeatBound) return kMaxRepeatBound + 1;
      }
      return value;
    };
    int min = parse_int();
    if (min < 0) return Error("expected number in {...}");
    int max = min;
    if (TryTake(',')) {
      max = parse_int();
      if (max < 0) max = kUnbounded;
    }
    if (!TryTake('}')) return Error("unterminated {...}");
    if (min > kMaxRepeatBound ||
        (max != kUnbounded && (max > kMaxRepeatBound || max < min))) {
      return Error("repetition bound out of range");
    }
    return AstNode::Repeat(std::move(node), min, max);
  }

  // atom := '(' ... ')' | '[' ... ']' | '.' | '^' | '$' | escape | literal
  Result<AstRef> ParseAtom() {
    if (AtEnd()) return Error("expected atom");
    char c = Take();
    switch (c) {
      case '(': {
        int capture_index = -1;
        if (TryTake('?')) {
          if (!TryTake(':')) return Error("only (?: groups are supported");
        } else {
          capture_index = num_captures_++;
        }
        auto inner = ParseAlternate();
        if (!inner.ok()) return inner.status();
        if (!TryTake(')')) return Error("unterminated group");
        return AstNode::Group(std::move(inner).value(), capture_index);
      }
      case '[':
        return ParseClass();
      case '.':
        return AstNode::Any();
      case '^':
        return AstNode::AnchorBegin();
      case '$':
        return AstNode::AnchorEnd();
      case '*':
      case '+':
      case '?':
        return Error("repetition operator with nothing to repeat");
      case '\\':
        return ParseEscape();
      default:
        return MakeLiteral(c);
    }
  }

  Result<AstRef> ParseEscape() {
    if (AtEnd()) return Error("trailing backslash");
    char c = Take();
    switch (c) {
      case 'w': return AstNode::Class(WordClass());
      case 'W': return AstNode::Class(NegateClass(WordClass()));
      case 'd': return AstNode::Class(DigitClass());
      case 'D': return AstNode::Class(NegateClass(DigitClass()));
      case 's': return AstNode::Class(SpaceClass());
      case 'S': return AstNode::Class(NegateClass(SpaceClass()));
      case 't': return MakeLiteral('\t');
      case 'n': return MakeLiteral('\n');
      case 'r': return MakeLiteral('\r');
      default:
        if (std::isalnum(static_cast<unsigned char>(c))) {
          return Error(StrFormat("unsupported escape \\%c", c));
        }
        return MakeLiteral(c);
    }
  }

  Result<AstRef> ParseClass() {
    std::bitset<256> cls;
    bool negated = TryTake('^');
    bool first = true;
    for (;;) {
      if (AtEnd()) return Error("unterminated character class");
      char c = Take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (AtEnd()) return Error("trailing backslash in class");
        char e = Take();
        switch (e) {
          case 'w': cls |= WordClass(); continue;
          case 'd': cls |= DigitClass(); continue;
          case 's': cls |= SpaceClass(); continue;
          case 't': c = '\t'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          default: c = e; break;
        }
      }
      // Range?
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Take();  // '-'
        char hi = Take();
        if (hi == '\\') {
          if (AtEnd()) return Error("trailing backslash in class");
          hi = Take();
          if (hi == 't') hi = '\t';
          else if (hi == 'n') hi = '\n';
          else if (hi == 'r') hi = '\r';
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          return Error("invalid range in character class");
        }
        for (int b = static_cast<unsigned char>(c);
             b <= static_cast<unsigned char>(hi); ++b) {
          SetFolded(cls, static_cast<char>(b));
        }
      } else {
        SetFolded(cls, c);
      }
    }
    if (negated) cls = NegateClass(cls);
    return AstNode::Class(cls);
  }

  void SetFolded(std::bitset<256>& cls, char c) {
    cls.set(static_cast<unsigned char>(c));
    if (options_.case_insensitive) {
      if (c >= 'a' && c <= 'z') {
        cls.set(static_cast<unsigned char>(c - 'a' + 'A'));
      } else if (c >= 'A' && c <= 'Z') {
        cls.set(static_cast<unsigned char>(c - 'A' + 'a'));
      }
    }
  }

  Result<AstRef> MakeLiteral(char c) {
    if (options_.case_insensitive &&
        std::isalpha(static_cast<unsigned char>(c))) {
      std::bitset<256> cls;
      SetFolded(cls, c);
      return AstNode::Class(cls);
    }
    return AstNode::Literal(c);
  }

  std::string_view pattern_;
  ParseOptions options_;
  size_t pos_ = 0;
  int num_captures_ = 0;
};

}  // namespace

Result<ParsedRegex> Parse(std::string_view pattern,
                          const ParseOptions& options) {
  return Parser(pattern, options).Run();
}

}  // namespace rulekit::regex
