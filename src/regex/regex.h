#ifndef RULEKIT_REGEX_REGEX_H_
#define RULEKIT_REGEX_REGEX_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/regex/ast.h"
#include "src/regex/dfa.h"
#include "src/regex/nfa.h"
#include "src/regex/parser.h"

namespace rulekit::regex {

/// A span [begin, end) of the subject text; npos/npos when a group did not
/// participate in the match.
struct Span {
  size_t begin = kNoPos;
  size_t end = kNoPos;

  static constexpr size_t kNoPos = static_cast<size_t>(-1);
  bool valid() const { return begin != kNoPos && end != kNoPos; }
  size_t length() const { return valid() ? end - begin : 0; }
  bool operator==(const Span&) const = default;
};

/// One match: the overall span plus one span per capturing group.
struct Match {
  Span overall;
  std::vector<Span> groups;

  /// Text of the overall match within `subject`.
  std::string_view Text(std::string_view subject) const {
    return subject.substr(overall.begin, overall.length());
  }
  /// Text of group `i`, or empty if the group did not participate.
  std::string_view GroupText(std::string_view subject, size_t i) const {
    if (i >= groups.size() || !groups[i].valid()) return {};
    return subject.substr(groups[i].begin, groups[i].length());
  }
};

/// Compiled regular expression. Cheap to copy (shares the compiled program).
/// Matching uses a Pike VM (captures, leftmost-first greedy semantics) and
/// never backtracks exponentially.
class Regex {
 public:
  /// Compile a pattern. See regex/parser.h for the supported syntax.
  static Result<Regex> Compile(std::string_view pattern,
                               const ParseOptions& options = {});

  /// Compile a pattern that folds ASCII case (the rule-language default).
  static Result<Regex> CompileCaseFolded(std::string_view pattern);

  /// Whole-string match.
  bool FullMatch(std::string_view text) const;

  /// True if the pattern matches anywhere in `text`.
  bool PartialMatch(std::string_view text) const;

  /// Leftmost match starting at or after `start`, with capture groups.
  std::optional<Match> Find(std::string_view text, size_t start = 0) const;

  /// All non-overlapping matches, scanning left to right.
  std::vector<Match> FindAll(std::string_view text) const;

  const std::string& pattern() const { return impl_->pattern; }
  int num_captures() const { return impl_->program.num_captures; }
  const Program& program() const { return impl_->program; }
  const AstNode& ast() const { return *impl_->ast; }
  const ParseOptions& options() const { return impl_->options; }

  /// True when PartialMatch runs on the O(len) DFA fast path (built at
  /// compile time for assertion-free patterns of moderate size).
  bool has_search_dfa() const { return impl_->search_dfa.has_value(); }

 private:
  struct Impl {
    std::string pattern;
    ParseOptions options;
    AstRef ast;
    Program program;
    // DFA of ".*<pattern>": PartialMatch(text) is true iff some prefix of
    // text is accepted. Absent when the pattern has anchors or the
    // determinization exceeded its state cap.
    std::optional<Dfa> search_dfa;
  };

  explicit Regex(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<const Impl> impl_;
};

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_REGEX_H_
