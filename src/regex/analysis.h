#ifndef RULEKIT_REGEX_ANALYSIS_H_
#define RULEKIT_REGEX_ANALYSIS_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/regex/regex.h"

namespace rulekit::regex {

/// Options for required-literal extraction.
struct AnalysisOptions {
  /// Minimum usable literal length. Shorter literals prune too little.
  size_t min_length = 3;
  /// Maximum number of alternative literals in the prefilter.
  size_t max_alternatives = 64;
  /// Maximum characters kept per literal.
  size_t max_literal_length = 24;
  /// Maximum byte-class cardinality expanded into alternatives
  /// (e.g. [ -] has 2).
  size_t max_class_expansion = 4;
};

/// Computes a *prefilter* for a pattern: a set of lowercase literal
/// substrings such that every text containing a match of the regex contains
/// at least one of them. Used by the rule index (§4 "Rule Execution and
/// Optimization"; cf. the trigram analysis in Google Code Search and the
/// rule indexing of ref [31]).
///
/// Fails with NotFound when no usable literal set exists (e.g. `\w+`),
/// in which case the rule must always be executed.
Result<std::vector<std::string>> RequiredAlternatives(
    const Regex& re, const AnalysisOptions& options = {});

/// Same, operating directly on an AST.
Result<std::vector<std::string>> RequiredAlternativesOf(
    const AstNode& root, const AnalysisOptions& options = {});

/// Every valid required-literal set the analyzer considered for `root`,
/// each minimized and min_length-filtered, ordered best-first by the same
/// structural score RequiredAlternatives uses (longest minimum literal,
/// then fewest alternatives). For a concatenation like "usb.*cable" this
/// yields both {"cable"} and {"usb"} — every set is individually sound,
/// so an index may pick whichever prunes best on its traffic (see
/// RuleIndex's corpus-aware build). Fails with NotFound when no usable
/// set exists, exactly when RequiredAlternativesOf does.
Result<std::vector<std::vector<std::string>>> CandidateAlternativeSets(
    const AstNode& root, const AnalysisOptions& options = {});

/// True when the pattern contains a positional anchor (`^`/`$`) anywhere.
/// The position-oblivious subset-construction DFA — and therefore the
/// containment checker — refuses anchored patterns with
/// FailedPrecondition; callers use this to classify such patterns as
/// skipped up front instead of paying a doomed DFA build per pair.
bool ContainsAnchor(const AstNode& root);

/// A shortest-ish string the pattern matches: minimum repeat counts, the
/// shortest alternation branch, one representative byte per class. Anchors
/// contribute nothing, so a pattern with an unsatisfiable mid-pattern
/// anchor (e.g. "a$b") yields a string that does NOT match — callers must
/// verify with PartialMatch before treating the witness as a member of
/// the language.
std::string SampleWitness(const AstNode& root);

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_ANALYSIS_H_
