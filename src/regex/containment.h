#ifndef RULEKIT_REGEX_CONTAINMENT_H_
#define RULEKIT_REGEX_CONTAINMENT_H_

#include "src/common/result.h"
#include "src/regex/dfa.h"
#include "src/regex/regex.h"

namespace rulekit::regex {

/// Limits for the decision procedures below.
struct ContainmentOptions {
  size_t max_dfa_states = 20000;
};

/// Decides L(a) ⊆ L(b) for whole-string (anchored) matching. Fails with
/// FailedPrecondition for patterns with ^/$ and ResourceExhausted when
/// determinization exceeds the state cap.
Result<bool> LanguageSubset(const Regex& a, const Regex& b,
                            const ContainmentOptions& options = {});

/// Decides whether every string that CONTAINS a match of `a` also contains
/// a match of `b` — the subsumption relation for Chimera-style rules, which
/// apply a regex to a title unanchored. Equivalent to
/// L(.*a.*) ⊆ L(.*b.*). The paper's example: `denim.*jeans?` is subsumed by
/// `jeans?`.
Result<bool> SearchSubsumes(const Regex& narrow, const Regex& broad,
                            const ContainmentOptions& options = {});

/// Decides whether the anchored languages intersect.
Result<bool> LanguagesIntersect(const Regex& a, const Regex& b,
                                const ContainmentOptions& options = {});

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_CONTAINMENT_H_
