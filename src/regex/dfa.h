#ifndef RULEKIT_REGEX_DFA_H_
#define RULEKIT_REGEX_DFA_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/regex/nfa.h"

namespace rulekit::regex {

/// Partition of the 256 byte values into equivalence classes such that all
/// bytes in a class behave identically in every program the partition was
/// computed from. Shrinks DFA transition tables dramatically.
struct ByteClasses {
  std::vector<uint16_t> class_of = std::vector<uint16_t>(256, 0);
  uint16_t num_classes = 1;
};

/// Compute the joint byte-class partition of several programs.
ByteClasses ComputeByteClasses(const std::vector<const Program*>& programs);

/// A fully-determinized automaton built from an NFA program by subset
/// construction. Used by the containment checker (rule subsumption) and as
/// a fast full-match path in tests.
class Dfa {
 public:
  /// Determinize `program` over `classes`. Fails with ResourceExhausted if
  /// more than `max_states` DFA states are produced, and with
  /// FailedPrecondition if the program contains ^/$ assertions (the subset
  /// construction here is position-oblivious).
  static Result<Dfa> Build(const Program& program, const ByteClasses& classes,
                           size_t max_states = 20000);

  /// Whole-string acceptance.
  bool Matches(std::string_view text) const;

  size_t num_states() const { return accepting_.size(); }
  bool IsAccepting(int32_t state) const {
    return state >= 0 && accepting_[static_cast<size_t>(state)];
  }
  /// Transition; -1 is the dead state (and stays dead).
  int32_t Next(int32_t state, unsigned char byte) const;

  static constexpr int32_t kDeadState = -1;
  int32_t start_state() const { return start_; }
  const ByteClasses& classes() const { return classes_; }

  /// Transition on a byte-class id (valid ids only).
  int32_t NextClass(int32_t state, uint16_t cls) const;

 private:
  Dfa() = default;

  ByteClasses classes_;
  int32_t start_ = 0;
  std::vector<int32_t> transitions_;  // num_states x num_classes
  std::vector<bool> accepting_;
};

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_DFA_H_
