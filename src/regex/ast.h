#ifndef RULEKIT_REGEX_AST_H_
#define RULEKIT_REGEX_AST_H_

#include <bitset>
#include <memory>
#include <string>
#include <vector>

namespace rulekit::regex {

/// Node kinds of the parsed regex syntax tree.
enum class AstKind {
  kEmpty,        // matches the empty string
  kLiteral,      // a single byte
  kClass,        // a set of bytes ([a-z], \w, ...)
  kAny,          // '.', any byte except '\n'
  kConcat,       // sequence of children
  kAlternate,    // choice between children
  kRepeat,       // child{min,max}; max = kUnbounded for unbounded
  kGroup,        // capturing or non-capturing group
  kAnchorBegin,  // ^
  kAnchorEnd,    // $
};

inline constexpr int kUnbounded = -1;

struct AstNode;
using AstRef = std::unique_ptr<AstNode>;

/// One node of the regex AST. Which fields are meaningful depends on kind;
/// the factory functions below construct well-formed nodes.
struct AstNode {
  AstKind kind = AstKind::kEmpty;

  char literal = 0;                 // kLiteral
  std::bitset<256> char_class;      // kClass
  std::vector<AstRef> children;     // kConcat, kAlternate
  AstRef child;                     // kRepeat, kGroup
  int min = 0;                      // kRepeat
  int max = kUnbounded;             // kRepeat
  int capture_index = -1;           // kGroup; -1 = non-capturing

  static AstRef Empty();
  static AstRef Literal(char c);
  static AstRef Class(std::bitset<256> cls);
  static AstRef Any();
  static AstRef Concat(std::vector<AstRef> children);
  static AstRef Alternate(std::vector<AstRef> children);
  static AstRef Repeat(AstRef child, int min, int max);
  static AstRef Group(AstRef child, int capture_index);
  static AstRef AnchorBegin();
  static AstRef AnchorEnd();

  /// Deep copy.
  AstRef Clone() const;

  /// Canonical-ish debug form (not guaranteed to re-parse identically).
  std::string ToString() const;
};

/// Byte-class helpers used by the parser and tests.
std::bitset<256> WordClass();    // [0-9A-Za-z_]
std::bitset<256> DigitClass();   // [0-9]
std::bitset<256> SpaceClass();   // [ \t\n\r\f\v]
std::bitset<256> NegateClass(const std::bitset<256>& cls);  // exact complement

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_AST_H_
