#ifndef RULEKIT_REGEX_PARSER_H_
#define RULEKIT_REGEX_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/regex/ast.h"

namespace rulekit::regex {

/// Options applied while parsing a pattern.
struct ParseOptions {
  /// Fold ASCII case: literals and class ranges match both cases. Chimera
  /// rules match lowercased titles, so rule patterns default to folded.
  bool case_insensitive = false;
};

/// Result of a successful parse.
struct ParsedRegex {
  AstRef root;
  int num_captures = 0;  // number of capturing groups
};

/// Parse a pattern into an AST.
///
/// Supported syntax: literals, '.', escapes (\w \W \d \D \s \S \t \n \r and
/// escaped metacharacters), classes [...] with ranges and negation,
/// alternation '|', groups '(...)' (capturing) and '(?:...)', postfix
/// '*' '+' '?' '{m}' '{m,}' '{m,n}', anchors '^' and '$'.
Result<ParsedRegex> Parse(std::string_view pattern,
                          const ParseOptions& options = {});

}  // namespace rulekit::regex

#endif  // RULEKIT_REGEX_PARSER_H_
