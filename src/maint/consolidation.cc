#include "src/maint/consolidation.h"

#include "src/common/string_util.h"

namespace rulekit::maint {

namespace {

Result<rules::Rule> MakeRegexRule(rules::RuleKind kind, std::string id,
                                  const std::string& pattern,
                                  std::string type) {
  if (kind == rules::RuleKind::kWhitelist) {
    return rules::Rule::Whitelist(std::move(id), pattern, std::move(type));
  }
  return rules::Rule::Blacklist(std::move(id), pattern, std::move(type));
}

}  // namespace

Result<rules::Rule> ConsolidateRules(const rules::Rule& a,
                                     const rules::Rule& b,
                                     std::string merged_id) {
  if (a.kind() != b.kind()) {
    return Status::InvalidArgument("cannot consolidate different kinds");
  }
  if (a.kind() != rules::RuleKind::kWhitelist &&
      a.kind() != rules::RuleKind::kBlacklist) {
    return Status::InvalidArgument("only regex rules can be consolidated");
  }
  if (a.target_type() != b.target_type()) {
    return Status::InvalidArgument(
        "cannot consolidate rules with different target types");
  }
  std::string pattern =
      "(?:" + a.pattern_text() + ")|(?:" + b.pattern_text() + ")";
  auto merged = MakeRegexRule(a.kind(), std::move(merged_id), pattern,
                              a.target_type());
  if (!merged.ok()) return merged.status();
  merged->metadata().confidence =
      std::min(a.metadata().confidence, b.metadata().confidence);
  merged->metadata().note =
      "consolidated from " + a.id() + " and " + b.id();
  return merged;
}

std::vector<std::string> TopLevelBranches(const std::string& pattern) {
  std::string body = pattern;
  // Unwrap "(?:...)" spanning the whole pattern.
  if (StartsWith(body, "(?:") && EndsWith(body, ")")) {
    int depth = 0;
    bool spans = true;
    for (size_t i = 0; i + 1 < body.size(); ++i) {
      if (body[i] == '\\') {
        ++i;
        continue;
      }
      if (body[i] == '(') ++depth;
      if (body[i] == ')') {
        --depth;
        if (depth == 0) {
          spans = false;  // the opening group closes before the end
          break;
        }
      }
    }
    if (spans) body = body.substr(3, body.size() - 4);
  }

  std::vector<std::string> branches;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && body[i] == '\\') {
      ++i;
      continue;
    }
    if (i < body.size() && body[i] == '(') ++depth;
    if (i < body.size() && body[i] == ')') --depth;
    if (i == body.size() || (body[i] == '|' && depth == 0)) {
      branches.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  return branches;
}

Result<std::vector<rules::Rule>> SplitRule(const rules::Rule& rule) {
  if (rule.kind() != rules::RuleKind::kWhitelist &&
      rule.kind() != rules::RuleKind::kBlacklist) {
    return Status::InvalidArgument("only regex rules can be split");
  }
  auto branches = TopLevelBranches(rule.pattern_text());
  if (branches.size() < 2) {
    return Status::FailedPrecondition(
        "pattern has no top-level alternation to split");
  }
  std::vector<rules::Rule> out;
  for (size_t i = 0; i < branches.size(); ++i) {
    auto part = MakeRegexRule(rule.kind(),
                              rule.id() + "." + std::to_string(i),
                              branches[i], rule.target_type());
    if (!part.ok()) return part.status();
    part->metadata() = rule.metadata();
    part->metadata().note = "split from " + rule.id();
    out.push_back(std::move(part).value());
  }
  return out;
}

}  // namespace rulekit::maint
