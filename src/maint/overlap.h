#ifndef RULEKIT_MAINT_OVERLAP_H_
#define RULEKIT_MAINT_OVERLAP_H_

#include <string>
#include <vector>

#include "src/data/product.h"
#include "src/rules/rule_set.h"

namespace rulekit::maint {

/// A pair of same-type rules whose coverage on a reference corpus overlaps
/// heavily — consolidation candidates (§4's "(abrasive|sand...)" vs
/// "abrasive.*..." example).
struct OverlapFinding {
  std::string rule_a;
  std::string rule_b;
  size_t coverage_a = 0;
  size_t coverage_b = 0;
  size_t intersection = 0;
  double jaccard = 0.0;
};

/// Measures pairwise coverage overlap of active same-kind, same-type regex
/// rules over `corpus`, reporting pairs with Jaccard >= `min_jaccard`.
/// Data-driven (unlike the language-level subsumption check): it reflects
/// how the rules behave on real traffic.
std::vector<OverlapFinding> FindOverlappingRules(
    const rules::RuleSet& rules,
    const std::vector<data::ProductItem>& corpus, double min_jaccard = 0.5);

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_OVERLAP_H_
