#ifndef RULEKIT_MAINT_CONSOLIDATION_H_
#define RULEKIT_MAINT_CONSOLIDATION_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/rules/rule.h"

namespace rulekit::maint {

/// Merges two same-type, same-kind regex rules into one disjunction rule
/// "(?:a)|(?:b)". The paper notes the tension (§4): consolidation shrinks
/// the rule set but makes debugging harder — which branch misfired? — so
/// this is offered as a tool, not a policy.
Result<rules::Rule> ConsolidateRules(const rules::Rule& a,
                                     const rules::Rule& b,
                                     std::string merged_id);

/// The inverse: splits a rule whose pattern is a top-level alternation
/// into one rule per branch (ids suffixed ".0", ".1", ...). This is what
/// an analyst reaches for when a composite rule misclassifies and the
/// offending part must be found and disabled in isolation.
Result<std::vector<rules::Rule>> SplitRule(const rules::Rule& rule);

/// Splits a pattern on its top-level '|' branches (unwrapping one level of
/// non-capturing group if the whole pattern is "(?:...)"). A pattern with
/// no top-level alternation yields a single branch.
std::vector<std::string> TopLevelBranches(const std::string& pattern);

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_CONSOLIDATION_H_
