#include "src/maint/drift_responder.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace rulekit::maint {

using chimera::ResponderDecision;

DriftResponder::DriftResponder(chimera::ChimeraPipeline& pipeline,
                               chimera::QualityMonitor& monitor,
                               DriftResponderPolicy policy,
                               RulePrecisionMonitor* rule_monitor)
    : pipeline_(pipeline),
      monitor_(monitor),
      policy_(policy),
      rule_monitor_(rule_monitor) {}

DriftResponder::~DriftResponder() { Stop(); }

std::vector<ResponderDecision> DriftResponder::EvaluateNow() {
  std::vector<ResponderDecision> decisions;
  for (const std::string& tenant : monitor_.Tenants()) {
    decisions.push_back(EvaluateTenant(tenant));
  }
  return decisions;
}

ResponderDecision DriftResponder::EvaluateTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateLocked(tenant, states_[tenant]);
}

ResponderDecision DriftResponder::EvaluateLocked(const std::string& tenant,
                                                 TenantState& state) {
  ResponderDecision decision;
  const Clock::time_point now = Clock::now();

  // Harvest the last fired retrain's report once it completes: a failed
  // run (journaling error, abandonment) escalates the backoff; a clean
  // one resets it. This is what keeps the responder from hot-looping on
  // a retrain that cannot succeed.
  if (state.inflight.has_value() &&
      state.inflight->wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
    const chimera::RetrainReport& report = state.inflight->get();
    if (!report.status.ok()) {
      ++state.failure_streak;
      state.backoff = std::min(
          std::pow(policy_.failure_backoff,
                   static_cast<double>(state.failure_streak - 1)),
          policy_.max_backoff);
      const auto quiet = std::chrono::milliseconds(static_cast<int64_t>(
          static_cast<double>(policy_.failure_cooldown.count()) *
          state.backoff));
      state.next_fire_allowed = std::max(state.next_fire_allowed, now + quiet);
    } else {
      state.failure_streak = 0;
      state.backoff = 1.0;
    }
    state.inflight.reset();
  }
  decision.backoff = state.backoff;

  // The histories are the responder's clocks: signals only count when a
  // new window arrived since the last evaluation, so re-polling between
  // windows neither inflates the hysteresis count nor double-fires.
  std::optional<chimera::BatchQuality> quality = monitor_.LatestQuality(tenant);
  const bool new_quality =
      quality.has_value() && (!state.has_seen_quality ||
                              quality->batch_index != state.last_quality_index);
  if (new_quality) {
    state.has_seen_quality = true;
    state.last_quality_index = quality->batch_index;
  }
  std::optional<chimera::CacheActivity> cache = monitor_.LatestCache(tenant);
  const bool new_cache =
      cache.has_value() &&
      (!state.has_seen_cache || cache->batch_index != state.last_cache_index);
  if (new_cache) {
    state.has_seen_cache = true;
    state.last_cache_index = cache->batch_index;
  }
  if (!new_quality && !new_cache) {
    decision.consecutive_alarms = state.consecutive_alarms;
    decision.reason = "no new window";
    return decision;  // a pure re-poll; not recorded
  }

  // Trigger signals, strongest first.
  const bool severe = new_quality && monitor_.SevereDegradationAlarm(tenant);
  const bool degraded = new_quality && monitor_.DegradationAlarm(tenant);
  const bool stale_spike =
      new_cache && monitor_.StaleDropRate(tenant, policy_.stale_window) >
                       policy_.stale_drop_rate_threshold;
  // The rule monitor is corpus-wide (per-rule windows, not per-tenant);
  // its flags nudge every tenant the same way.
  const bool rule_flags =
      rule_monitor_ != nullptr &&
      rule_monitor_->FlaggedRules().size() >= policy_.min_flagged_rules;

  const bool alarm_signal = severe || degraded || stale_spike || rule_flags;
  if (alarm_signal) {
    ++state.consecutive_alarms;
  } else {
    state.consecutive_alarms = 0;
  }
  decision.consecutive_alarms = state.consecutive_alarms;
  if (severe) {
    decision.trigger = ResponderDecision::Trigger::kSevereDegradation;
  } else if (degraded) {
    decision.trigger = ResponderDecision::Trigger::kDegradation;
  } else if (stale_spike) {
    decision.trigger = ResponderDecision::Trigger::kStaleSpike;
  } else if (rule_flags) {
    decision.trigger = ResponderDecision::Trigger::kRuleFlags;
  }

  bool want_fire = false;
  bool urgent = false;
  if (severe && policy_.escalate_severe) {
    // Statistically unambiguous degradation: skip the hysteresis wait
    // and the trainer's own gates. The cooldown below still applies.
    want_fire = true;
    urgent = true;
  } else if (alarm_signal &&
             state.consecutive_alarms >= policy_.min_alarm_windows) {
    want_fire = true;
  }

  if (!want_fire) {
    decision.reason = alarm_signal ? "hysteresis: waiting for more windows"
                                   : "healthy";
  } else if (now < state.next_fire_allowed) {
    decision.cooldown_remaining_ms =
        std::chrono::duration<double, std::milli>(state.next_fire_allowed -
                                                  now)
            .count();
    decision.reason = state.failure_streak > 0
                          ? "backing off after failed retrain"
                          : "suppressed by cooldown";
  } else {
    state.inflight =
        pipeline_.RequestRetrain(rules::TenantId(tenant), urgent);
    state.last_retrain = state.inflight;
    decision.fired = true;
    decision.urgent = urgent;
    ++state.fires;
    ++total_fires_;
    state.consecutive_alarms = 0;
    state.next_fire_allowed = now + policy_.cooldown;
    switch (decision.trigger) {
      case ResponderDecision::Trigger::kSevereDegradation:
        decision.reason = "severe degradation: urgent retrain";
        break;
      case ResponderDecision::Trigger::kDegradation:
        decision.reason = "sustained degradation: retrain";
        break;
      case ResponderDecision::Trigger::kStaleSpike:
        decision.reason = "cache stale-drop spike: retrain";
        break;
      case ResponderDecision::Trigger::kRuleFlags:
        decision.reason = "imprecise-rule flags: retrain";
        break;
      case ResponderDecision::Trigger::kNone:
        break;
    }
  }

  monitor_.RecordResponder(decision, tenant);
  return decision;
}

void DriftResponder::Start(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;  // already running
  stop_ = false;
  thread_ = std::thread([this, interval] { PollLoop(interval); });
}

void DriftResponder::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  thread_ = std::thread();
}

bool DriftResponder::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return !stop_ && thread_.joinable();
}

void DriftResponder::PollLoop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    stop_cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    EvaluateNow();
    lock.lock();
  }
}

size_t DriftResponder::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_fires_;
}

std::optional<std::shared_future<chimera::RetrainReport>>
DriftResponder::LastRetrain(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(tenant);
  if (it == states_.end()) return std::nullopt;
  return it->second.last_retrain;
}

std::vector<ResponderTenantStatus> DriftResponder::Status() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  std::vector<ResponderTenantStatus> out;
  out.reserve(states_.size());
  for (const auto& [tenant, state] : states_) {
    ResponderTenantStatus status;
    status.tenant = tenant;
    status.consecutive_alarms = state.consecutive_alarms;
    status.fires = state.fires;
    status.failure_streak = state.failure_streak;
    status.backoff = state.backoff;
    if (state.next_fire_allowed > now) {
      status.cooldown_remaining_ms =
          std::chrono::duration<double, std::milli>(state.next_fire_allowed -
                                                    now)
              .count();
    }
    status.retrain_inflight =
        state.inflight.has_value() &&
        state.inflight->wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace rulekit::maint
