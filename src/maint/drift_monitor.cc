#include "src/maint/drift_monitor.h"

#include <algorithm>

#include "src/rules/repository.h"

namespace rulekit::maint {

void RulePrecisionMonitor::RecordVerdict(const std::string& rule_id,
                                         bool correct) {
  auto& window = windows_[rule_id];
  window.push_back(correct);
  while (window.size() > options_.window_size) window.pop_front();
}

double RulePrecisionMonitor::WindowedPrecision(
    const std::string& rule_id) const {
  auto it = windows_.find(rule_id);
  if (it == windows_.end() || it->second.empty()) return 1.0;
  size_t correct = static_cast<size_t>(
      std::count(it->second.begin(), it->second.end(), true));
  return static_cast<double>(correct) /
         static_cast<double>(it->second.size());
}

std::vector<DriftFlag> RulePrecisionMonitor::FlaggedRules() const {
  std::vector<DriftFlag> flags;
  for (const auto& [id, window] : windows_) {
    if (window.size() < options_.min_verdicts) continue;
    double precision = WindowedPrecision(id);
    if (precision < options_.precision_floor) {
      flags.push_back({id, precision, window.size()});
    }
  }
  std::sort(flags.begin(), flags.end(),
            [](const DriftFlag& a, const DriftFlag& b) {
              if (a.windowed_precision != b.windowed_precision) {
                return a.windowed_precision < b.windowed_precision;
              }
              return a.rule_id < b.rule_id;
            });
  return flags;
}

std::vector<InapplicableRule> FindInapplicableRules(
    const rules::RuleSet& rules, const data::Taxonomy& taxonomy) {
  std::vector<InapplicableRule> out;
  for (const auto& rule : rules.rules()) {
    if (!rule.is_active()) continue;
    for (const auto& type : rule.candidate_types()) {
      data::TypeId id = taxonomy.IdOf(type);
      if (id == data::kInvalidTypeId) continue;  // foreign type: not ours
      if (!taxonomy.IsActive(id)) {
        out.push_back({rule.id(), type, taxonomy.ReplacementsOf(type)});
        break;
      }
    }
  }
  return out;
}

namespace {

// Clones a regex/attr rule with a new id and target type. Predicate and
// attribute-value rules are not auto-migrated (their semantics entangle
// the type set) — they are only retired.
std::optional<rules::Rule> CloneForType(const rules::Rule& rule,
                                        const std::string& new_id,
                                        const std::string& type) {
  switch (rule.kind()) {
    case rules::RuleKind::kWhitelist: {
      auto clone = rules::Rule::Whitelist(new_id, rule.pattern_text(), type);
      if (!clone.ok()) return std::nullopt;
      return std::move(clone).value();
    }
    case rules::RuleKind::kBlacklist: {
      auto clone = rules::Rule::Blacklist(new_id, rule.pattern_text(), type);
      if (!clone.ok()) return std::nullopt;
      return std::move(clone).value();
    }
    case rules::RuleKind::kAttributeExists:
      return rules::Rule::AttributeExists(new_id, rule.attribute(), type);
    default:
      return std::nullopt;
  }
}

}  // namespace

SplitMigrationReport MigrateRulesAcrossSplit(
    rules::RuleRepository& repository, const data::Taxonomy& taxonomy,
    std::string_view author) {
  SplitMigrationReport report;
  auto inapplicable = FindInapplicableRules(repository.rules(), taxonomy);
  for (const auto& finding : inapplicable) {
    const rules::Rule* rule = repository.rules().Find(finding.rule_id);
    if (rule == nullptr || !rule->is_active()) continue;

    std::vector<rules::Rule> drafts;
    for (const auto& replacement : finding.replacements) {
      auto clone = CloneForType(*rule, finding.rule_id + "@" + replacement,
                                replacement);
      if (!clone.has_value()) continue;
      clone->metadata().confidence = rule->metadata().confidence;
      clone->metadata().origin = rule->metadata().origin;
      clone->metadata().note = "drafted from " + finding.rule_id +
                               " after split of " + finding.retired_type;
      drafts.push_back(std::move(*clone));
    }
    if (!repository
             .Retire(finding.rule_id, author,
                     "target type split: " + finding.retired_type)
             .ok()) {
      continue;
    }
    report.retired.push_back(finding.rule_id);
    for (auto& draft : drafts) {
      std::string id = draft.id();
      if (!repository.Add(std::move(draft), author).ok()) continue;
      // Drafts are parked disabled until an analyst reviews them.
      if (repository.Disable(id, author, "pending review after split")
              .ok()) {
        report.drafted.push_back(std::move(id));
      }
    }
  }
  return report;
}

}  // namespace rulekit::maint
