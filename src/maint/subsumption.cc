#include "src/maint/subsumption.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <optional>

#include "src/common/string_util.h"
#include "src/regex/containment.h"
#include "src/rules/token_pattern.h"
#include "src/text/aho_corasick.h"

namespace rulekit::maint {

namespace {

// A pattern recognized as a token sequence, in either the plain display
// shape ("denim.*jeans", substring semantics) or the bounded shape
// produced by rules::BoundedTokenPattern (whole-token semantics).
struct TokenShape {
  std::vector<std::string> tokens;
  bool bounded = false;
};

std::optional<TokenShape> ExtractTokens(const std::string& pattern) {
  if (auto tokens = rules::ParseTokenPattern(pattern)) {
    bool bounded = StartsWith(pattern, "(^|");
    return TokenShape{*tokens, bounded};
  }
  std::vector<std::string> tokens;
  if (IsDotStarTokenPattern(pattern, &tokens)) {
    return TokenShape{std::move(tokens), false};
  }
  return std::nullopt;
}

// Positive test under substring semantics for the broad side: every
// narrow-matching title contains the narrow tokens (at least as
// substrings) in order, so it matches broad if broad's tokens embed in
// narrow's, each as a substring.
bool SubstringSubsume(const std::vector<std::string>& narrow,
                      const std::vector<std::string>& broad) {
  size_t b = 0;
  for (const auto& nt : narrow) {
    if (b == broad.size()) break;
    if (nt.find(broad[b]) != std::string::npos) ++b;
  }
  return b == broad.size();
}

// Positive test when the broad side is bounded (whole-token): a narrow
// match forces narrow's tokens as whole tokens only when narrow is itself
// bounded, so the embedding must use exact token equality.
bool ExactTokenSubsume(const std::vector<std::string>& narrow,
                       const std::vector<std::string>& broad) {
  size_t b = 0;
  for (const auto& nt : narrow) {
    if (b == broad.size()) break;
    if (nt == broad[b]) ++b;
  }
  return b == broad.size();
}

// Sound refutation: construct minimal titles that match `narrow` and test
// them against `broad`. A witness that broad misses disproves subsumption.
bool WitnessRefutes(const TokenShape& narrow, const regex::Regex& narrow_re,
                    const regex::Regex& broad_re) {
  std::vector<const char*> fillers =
      narrow.bounded ? std::vector<const char*>{" ", "-"}
                     : std::vector<const char*>{"", " ", "0"};
  for (const char* filler : fillers) {
    std::string witness;
    for (size_t i = 0; i < narrow.tokens.size(); ++i) {
      if (i) witness += filler;
      witness += narrow.tokens[i];
    }
    // Belt and braces: only use witnesses that genuinely match narrow.
    if (!narrow_re.PartialMatch(witness)) continue;
    if (!broad_re.PartialMatch(witness)) return true;
  }
  return false;
}

// Three-valued fast decision: 1 = subsumed, 0 = not, -1 = undecided.
int TokenFastPath(const TokenShape& narrow, const TokenShape& broad,
                  const regex::Regex& narrow_re,
                  const regex::Regex& broad_re) {
  if (!broad.bounded) {
    if (SubstringSubsume(narrow.tokens, broad.tokens)) return 1;
  } else if (narrow.bounded) {
    if (ExactTokenSubsume(narrow.tokens, broad.tokens)) return 1;
  }
  if (WitnessRefutes(narrow, narrow_re, broad_re)) return 0;
  return -1;
}

// Per-group literal buckets: every rule contributes its required literals
// (regex/analysis.h) to one Aho-Corasick automaton plus a verified
// shortest-match witness. A direction narrow ⊆ broad is then refuted
// without a DFA whenever the narrow witness — a string in L(narrow) —
// triggers none of broad's literals: the prefilter invariant guarantees
// broad misses it. Only pairs the buckets cannot separate hit the DFA.
struct GroupPrefilter {
  std::vector<bool> anchored;     // pattern contains ^ or $
  std::vector<bool> refutable;    // rule has required literals
  std::vector<bool> witness_ok;   // witness verified against the rule
  std::vector<std::vector<uint32_t>> witness_hits;  // sorted group positions

  GroupPrefilter(const std::vector<const rules::Rule*>& group,
                 const SubsumptionOptions& options) {
    const size_t n = group.size();
    anchored.resize(n);
    refutable.resize(n);
    witness_ok.resize(n);
    witness_hits.resize(n);
    text::AhoCorasick automaton;
    std::vector<std::string> witnesses(n);
    for (size_t i = 0; i < n; ++i) {
      const regex::AstNode& ast = group[i]->pattern_regex()->ast();
      anchored[i] = regex::ContainsAnchor(ast);
      if (!options.use_literal_prefilter) continue;
      auto literals = regex::RequiredAlternativesOf(ast, options.analysis);
      if (literals.ok()) {
        refutable[i] = true;
        for (const auto& lit : *literals) {
          automaton.Add(lit, static_cast<uint32_t>(i));
        }
      }
      // Belt and braces: a witness is only trusted once the rule's own
      // regex accepts it (mid-pattern anchors can defeat SampleWitness).
      witnesses[i] = regex::SampleWitness(ast);
      witness_ok[i] = group[i]->pattern_regex()->PartialMatch(witnesses[i]);
    }
    if (!options.use_literal_prefilter) return;
    automaton.Build();
    std::string lowered;
    for (size_t i = 0; i < n; ++i) {
      if (!witness_ok[i]) continue;
      lowered = witnesses[i];
      ToLowerAsciiInPlace(lowered);
      automaton.CollectUnique(lowered, witness_hits[i]);
    }
  }

  // True when narrow ⊆ broad is disproved by the narrow witness.
  bool Refutes(size_t narrow, size_t broad) const {
    if (!witness_ok[narrow] || !refutable[broad]) return false;
    const auto& hits = witness_hits[narrow];
    return !std::binary_search(hits.begin(), hits.end(),
                               static_cast<uint32_t>(broad));
  }
};

}  // namespace

bool IsDotStarTokenPattern(const std::string& pattern,
                           std::vector<std::string>* tokens) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = pattern.find(".*", start);
    parts.push_back(pattern.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start));
    if (pos == std::string::npos) break;
    start = pos + 2;
  }
  for (const auto& part : parts) {
    if (part.empty()) return false;
    for (char c : part) {
      bool plain = std::isalnum(static_cast<unsigned char>(c)) ||
                   c == ' ' || c == '-' || c == '_';
      if (!plain) return false;
    }
  }
  if (tokens != nullptr) *tokens = parts;
  return true;
}

std::vector<std::string> ApplySubsumptionFindings(
    rules::RuleRepository& repository, const SubsumptionReport& report,
    std::string_view author) {
  std::vector<std::string> retired;
  for (const auto& finding : report.findings) {
    const rules::Rule* rule = repository.rules().Find(finding.subsumed);
    if (rule == nullptr || !rule->is_active()) continue;
    std::string reason =
        (finding.equivalent ? "equivalent to " : "subsumed by ") +
        finding.by;
    if (repository.Retire(finding.subsumed, author, reason).ok()) {
      retired.push_back(finding.subsumed);
    }
  }
  return retired;
}

SubsumptionReport FindSubsumedRules(const rules::RuleSet& rules,
                                    const SubsumptionOptions& options) {
  SubsumptionReport report;

  // Group active regex rules by (kind, target type): subsumption is only
  // actionable within a group.
  std::map<std::pair<int, std::string>, std::vector<const rules::Rule*>>
      groups;
  for (const auto& rule : rules.rules()) {
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kBlacklist) {
      continue;
    }
    groups[{static_cast<int>(rule.kind()), rule.target_type()}].push_back(
        &rule);
  }

  regex::ContainmentOptions containment_options;
  containment_options.max_dfa_states = options.max_dfa_states;

  for (const auto& [key, group] : groups) {
    GroupPrefilter prefilter(group, options);
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        const rules::Rule* a = group[i];
        const rules::Rule* b = group[j];
        ++report.pairs_checked;

        int a_in_b_tv = -1, b_in_a_tv = -1;
        if (options.use_token_fast_path) {
          auto sa = ExtractTokens(a->pattern_text());
          auto sb = ExtractTokens(b->pattern_text());
          if (sa.has_value() && sb.has_value()) {
            a_in_b_tv = TokenFastPath(*sa, *sb, *a->pattern_regex(),
                                      *b->pattern_regex());
            b_in_a_tv = TokenFastPath(*sb, *sa, *b->pattern_regex(),
                                      *a->pattern_regex());
            if (a_in_b_tv >= 0 && b_in_a_tv >= 0) ++report.fast_path_hits;
          }
        }
        auto decide = [&](int tv, size_t narrow, size_t broad,
                          bool& out) -> bool {
          if (tv >= 0) {
            out = tv == 1;
            return true;
          }
          if (prefilter.Refutes(narrow, broad)) {
            ++report.prefilter_refutations;
            out = false;
            return true;
          }
          if (prefilter.anchored[narrow] || prefilter.anchored[broad]) {
            // The DFA refuses anchors with FailedPrecondition; classify
            // the pair as skipped without paying for a doomed build.
            return false;
          }
          auto r = regex::SearchSubsumes(*group[narrow]->pattern_regex(),
                                         *group[broad]->pattern_regex(),
                                         containment_options);
          if (!r.ok()) return false;
          out = *r;
          return true;
        };
        bool a_in_b = false, b_in_a = false;
        if (!decide(a_in_b_tv, i, j, a_in_b) ||
            !decide(b_in_a_tv, j, i, b_in_a)) {
          ++report.skipped_pairs;
          if (prefilter.anchored[i] || prefilter.anchored[j]) {
            ++report.anchored_pairs;
          }
          continue;
        }

        if (a_in_b && b_in_a) {
          // Equivalent: by convention retire the later id.
          const rules::Rule* keep = a->id() < b->id() ? a : b;
          const rules::Rule* drop = a->id() < b->id() ? b : a;
          report.findings.push_back({drop->id(), keep->id(), true});
        } else if (a_in_b) {
          report.findings.push_back({a->id(), b->id(), false});
        } else if (b_in_a) {
          report.findings.push_back({b->id(), a->id(), false});
        }
      }
    }
  }
  return report;
}

}  // namespace rulekit::maint
