#ifndef RULEKIT_MAINT_SUBSUMPTION_H_
#define RULEKIT_MAINT_SUBSUMPTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/regex/analysis.h"
#include "src/rules/repository.h"
#include "src/rules/rule_set.h"

namespace rulekit::maint {

/// One detected redundancy: `subsumed` can be removed because every title
/// it fires on also fires `by` (same kind, same target type).
struct SubsumptionFinding {
  std::string subsumed;
  std::string by;
  bool equivalent = false;  // the two rules match exactly the same titles
};

/// Options for the subsumption scan.
struct SubsumptionOptions {
  /// DFA state cap per containment decision; pairs that exceed it are
  /// skipped (reported in `skipped_pairs`).
  size_t max_dfa_states = 8000;
  /// Try the cheap token-subsequence test for mined-style "a.*b.*c"
  /// patterns before the automata-based decision.
  bool use_token_fast_path = true;
  /// Bucket rules by their required literals (regex/analysis.h) and refute
  /// non-containing pairs before the automata decision: when a verified
  /// sample witness of the narrow side contains none of the broad side's
  /// required literals, the broad side provably misses that witness and
  /// the pair is decided "not subsumed" without building a product DFA.
  bool use_literal_prefilter = true;
  /// Literal-extraction knobs for the prefilter buckets.
  regex::AnalysisOptions analysis;
};

/// Report of a full scan.
struct SubsumptionReport {
  std::vector<SubsumptionFinding> findings;
  size_t pairs_checked = 0;
  size_t fast_path_hits = 0;  // decided by the token subsequence test
  size_t skipped_pairs = 0;   // containment undecidable within limits
  /// Directions refuted by the literal prefilter (each saved a DFA build).
  size_t prefilter_refutations = 0;
  /// Subset of skipped_pairs where an anchored pattern (`^`/`$`) made the
  /// automata decision impossible. These are skipped-not-failed: anchors
  /// are outside the containment checker's language, not an error.
  size_t anchored_pairs = 0;
};

/// Finds subsumed rules among same-kind, same-type active regex rules
/// (§4 "Rule Maintenance", third challenge; paper example: "denim.*jeans?"
/// is subsumed by "jeans?"). Exact decision via regex language containment
/// on the unanchored search semantics, with a token-level fast path for
/// mined rules.
SubsumptionReport FindSubsumedRules(const rules::RuleSet& rules,
                                    const SubsumptionOptions& options = {});

/// True if `pattern` has the mined shape tok1.*tok2.*...*tokN (plain
/// literal tokens); fills `tokens` when so.
bool IsDotStarTokenPattern(const std::string& pattern,
                           std::vector<std::string>* tokens);

/// Applies a subsumption report to a repository: retires every subsumed
/// rule (audited with the subsuming rule's id). Returns the ids retired.
/// Rules already inactive by the time this runs are skipped.
std::vector<std::string> ApplySubsumptionFindings(
    rules::RuleRepository& repository, const SubsumptionReport& report,
    std::string_view author = "maintenance");

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_SUBSUMPTION_H_
