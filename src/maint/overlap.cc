#include "src/maint/overlap.h"

#include <algorithm>
#include <map>

#include "src/engine/executor.h"

namespace rulekit::maint {

std::vector<OverlapFinding> FindOverlappingRules(
    const rules::RuleSet& rules,
    const std::vector<data::ProductItem>& corpus, double min_jaccard) {
  // One indexed pass computes every rule's coverage.
  engine::RuleExecutor executor(rules, {.use_index = true});
  auto result = executor.Execute(corpus);

  const auto& all = rules.rules();
  std::map<size_t, std::vector<uint32_t>> coverage;  // rule idx -> items
  for (uint32_t item = 0; item < result.matches_per_item.size(); ++item) {
    for (size_t rule_idx : result.matches_per_item[item]) {
      coverage[rule_idx].push_back(item);
    }
  }

  // Group rule indices by (kind, type).
  std::map<std::pair<int, std::string>, std::vector<size_t>> groups;
  for (const auto& [rule_idx, items] : coverage) {
    const rules::Rule& rule = all[rule_idx];
    groups[{static_cast<int>(rule.kind()), rule.target_type()}].push_back(
        rule_idx);
  }

  std::vector<OverlapFinding> findings;
  for (const auto& [key, members] : groups) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const auto& ca = coverage[members[i]];
        const auto& cb = coverage[members[j]];
        // Sorted by construction; linear intersection.
        size_t inter = 0, x = 0, y = 0;
        while (x < ca.size() && y < cb.size()) {
          if (ca[x] < cb[y]) {
            ++x;
          } else if (ca[x] > cb[y]) {
            ++y;
          } else {
            ++inter;
            ++x;
            ++y;
          }
        }
        size_t uni = ca.size() + cb.size() - inter;
        double jaccard = uni == 0 ? 0.0
                                  : static_cast<double>(inter) /
                                        static_cast<double>(uni);
        if (jaccard >= min_jaccard) {
          findings.push_back({all[members[i]].id(), all[members[j]].id(),
                              ca.size(), cb.size(), inter, jaccard});
        }
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const OverlapFinding& a, const OverlapFinding& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              return a.rule_a < b.rule_a;
            });
  return findings;
}

}  // namespace rulekit::maint
