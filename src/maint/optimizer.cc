#include "src/maint/optimizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/engine/executor.h"
#include "src/engine/rule_index.h"
#include "src/maint/consolidation.h"
#include "src/maint/overlap.h"

namespace rulekit::maint {

namespace {

bool IsRegexRule(const rules::Rule& rule) {
  return rule.kind() == rules::RuleKind::kWhitelist ||
         rule.kind() == rules::RuleKind::kBlacklist;
}

// Per-rule-id corpus coverage: one indexed executor run over the corpus.
std::map<std::string, size_t> CorpusCoverage(
    const rules::RuleSet& set, const std::vector<data::ProductItem>& corpus) {
  std::map<std::string, size_t> coverage;
  if (corpus.empty()) return coverage;
  engine::RuleExecutor executor(set);
  auto result = executor.Execute(corpus);
  const auto& all = set.rules();
  for (const auto& matched : result.matches_per_item) {
    for (size_t idx : matched) coverage[all[idx].id()] += 1;
  }
  return coverage;
}

double MeanCandidates(const engine::RuleIndex& index,
                      const std::vector<std::string>& titles) {
  if (titles.empty()) return 0.0;
  engine::RuleIndex::Scratch scratch;
  std::vector<size_t> candidates;
  size_t total = 0;
  for (const auto& title : titles) {
    index.Candidates(title, scratch, candidates);
    total += candidates.size();
  }
  return static_cast<double>(total) / static_cast<double>(titles.size());
}

std::string FormatScore(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string OptimizationPlan::Summary() const {
  std::ostringstream out;
  out << "optimization plan over " << rules_considered << " rules, "
      << corpus_items << " corpus items: " << drops.size()
      << " subsumption drops, " << merges.size() << " merges, "
      << prunes.size() << " prunes";
  if (prune_affected_items > 0) {
    out << " (WARNING: prunes touch " << prune_affected_items
        << " corpus items)";
  }
  out << "; scan checked " << subsumption.pairs_checked << " pairs ("
      << subsumption.fast_path_hits << " fast-path, "
      << subsumption.prefilter_refutations << " prefilter-refuted, "
      << subsumption.skipped_pairs << " skipped of which "
      << subsumption.anchored_pairs << " anchored)";
  if (rebucket.sample_titles > 0) {
    out << "; re-bucketing over " << rebucket.sample_titles
        << " sampled titles moves " << rebucket.rebucketed_rules
        << " rules, candidates/item " << rebucket.candidates_per_item_before
        << " -> " << rebucket.candidates_per_item_after;
  }
  return out.str();
}

OptimizationPlan PlanOptimization(const rules::RuleSet& rules,
                                  const std::vector<data::ProductItem>& corpus,
                                  const OptimizerOptions& options) {
  OptimizationPlan plan;
  plan.corpus_items = corpus.size();

  // Planning scope: the rules owned by options.tenant. Indices into
  // `scoped` drive every analyzer below so one executor pass prices them
  // all.
  rules::RuleSet scoped;
  for (const auto& rule : rules.rules()) {
    if (rule.metadata().tenant != options.tenant.value()) continue;
    (void)scoped.Add(rule);
  }
  for (const auto& rule : scoped.rules()) {
    if (rule.is_active() && IsRegexRule(rule)) ++plan.rules_considered;
  }

  // ---- (a) subsumption drops --------------------------------------------
  std::set<std::string> dropped;
  if (options.drop_subsumed) {
    plan.subsumption = FindSubsumedRules(scoped, options.subsumption);
    for (const auto& finding : plan.subsumption.findings) {
      std::string drop_id = finding.subsumed;
      std::string keep_id = finding.by;
      // Equivalent pair: deterministic tie-break, the lexicographically
      // lowest id survives no matter which orientation the finding came
      // in — so A == B can never schedule both for removal.
      if (finding.equivalent && drop_id < keep_id) std::swap(drop_id, keep_id);
      if (dropped.count(drop_id) != 0) continue;
      // The keeper must itself survive the plan: a finding whose `by` is
      // already scheduled for removal is skipped (safe — transitive
      // subsumption re-finds it against the surviving cover next run).
      if (dropped.count(keep_id) != 0) continue;
      dropped.insert(drop_id);
      plan.drops.push_back({drop_id, keep_id, finding.equivalent});
    }
  }

  auto coverage = CorpusCoverage(scoped, corpus);
  auto coverage_of = [&](const std::string& id) -> size_t {
    auto it = coverage.find(id);
    return it == coverage.end() ? 0 : it->second;
  };

  // ---- (b) merge overlapping pairs --------------------------------------
  std::set<std::string> merge_used;
  if (options.merge_overlapping && !corpus.empty()) {
    auto overlaps =
        FindOverlappingRules(scoped, corpus, options.merge_min_jaccard);
    std::stable_sort(overlaps.begin(), overlaps.end(),
                     [](const OverlapFinding& a, const OverlapFinding& b) {
                       return a.jaccard > b.jaccard;
                     });
    for (const auto& finding : overlaps) {
      if (dropped.count(finding.rule_a) || dropped.count(finding.rule_b)) {
        continue;
      }
      if (merge_used.count(finding.rule_a) ||
          merge_used.count(finding.rule_b)) {
        continue;
      }
      const rules::Rule* a = scoped.Find(finding.rule_a);
      const rules::Rule* b = scoped.Find(finding.rule_b);
      if (a == nullptr || b == nullptr) continue;
      double delta = a->metadata().confidence - b->metadata().confidence;
      if (delta < 0) delta = -delta;
      if (delta > options.merge_max_confidence_delta) continue;
      std::string merged_id = finding.rule_a + "+" + finding.rule_b;
      if (rules.Find(merged_id) != nullptr) continue;
      auto merged = ConsolidateRules(*a, *b, merged_id);
      if (!merged.ok()) continue;
      merged->metadata().origin = rules::RuleOrigin::kCurated;
      merged->metadata().tenant = options.tenant.value();
      merge_used.insert(finding.rule_a);
      merge_used.insert(finding.rule_b);
      plan.merges.push_back({finding.rule_a, finding.rule_b,
                             std::move(merged).value(), finding.jaccard,
                             finding.coverage_a, finding.coverage_b,
                             finding.intersection});
    }
  }

  // ---- (c) prune low-value survivors (§5.2 scoring) ---------------------
  if (options.prune_low_value && !corpus.empty()) {
    for (const auto& rule : scoped.rules()) {
      if (!rule.is_active() || !IsRegexRule(rule)) continue;
      if (dropped.count(rule.id()) || merge_used.count(rule.id())) continue;
      double confidence = rule.metadata().confidence;
      if (confidence >= options.prune_confidence_ceiling) continue;
      size_t cov = coverage_of(rule.id());
      double score = (static_cast<double>(cov) /
                      static_cast<double>(corpus.size())) *
                     confidence;
      if (score > options.prune_score_threshold) continue;
      plan.prunes.push_back({rule.id(), confidence, cov, score});
      plan.prune_affected_items += cov;
    }
  }

  // ---- (d) corpus-aware re-bucketing ------------------------------------
  if (options.rebucket && !corpus.empty()) {
    auto sample = std::make_shared<std::vector<std::string>>();
    const size_t take = std::min(options.rebucket_sample, corpus.size());
    sample->reserve(take);
    for (size_t i = 0; i < take; ++i) sample->push_back(corpus[i].title);

    engine::RuleIndex before;
    before.Build(scoped, options.analysis);
    rules::RuleSet planned = PlannedRuleSet(scoped, plan);
    engine::RuleIndex after;
    after.Build(planned, options.analysis, *sample);

    plan.rebucket.sample_titles = sample->size();
    plan.rebucket.rebucketed_rules = after.stats().rebucketed_rules;
    plan.rebucket.candidates_per_item_before = MeanCandidates(before, *sample);
    plan.rebucket.candidates_per_item_after = MeanCandidates(after, *sample);
    plan.index_sample = std::move(sample);
  }

  return plan;
}

Status StageOptimizationPlan(rules::RuleTransaction& txn,
                             const OptimizationPlan& plan) {
  for (const auto& drop : plan.drops) {
    Status st = txn.Retire(
        rules::RuleId(drop.id),
        (drop.equivalent ? "optimizer: equivalent to " : "optimizer: subsumed by ") +
            drop.by);
    if (!st.ok()) return st;
  }
  for (const auto& merge : plan.merges) {
    const std::string reason = "optimizer: merged into " + merge.merged.id();
    Status st = txn.Retire(rules::RuleId(merge.id_a), reason);
    if (!st.ok()) return st;
    st = txn.Retire(rules::RuleId(merge.id_b), reason);
    if (!st.ok()) return st;
    st = txn.Add(merge.merged);
    if (!st.ok()) return st;
  }
  for (const auto& prune : plan.prunes) {
    Status st = txn.Disable(
        rules::RuleId(prune.id),
        "optimizer: low value (score " + FormatScore(prune.score) + ")");
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Result<OptimizeStats> ApplyOptimizationPlan(rules::RuleRepository& repository,
                                            const OptimizationPlan& plan,
                                            std::string_view author,
                                            const rules::TenantId& tenant,
                                            bool dry_run) {
  OptimizeStats stats;
  stats.retired = plan.drops.size() + 2 * plan.merges.size();
  stats.merged = plan.merges.size();
  stats.pruned = plan.prunes.size();
  if (dry_run || plan.empty()) return stats;
  Status st =
      repository.Mutate(author, tenant, [&](rules::RuleTransaction& txn) {
        return StageOptimizationPlan(txn, plan);
      });
  if (!st.ok()) return st;
  stats.applied = true;
  return stats;
}

rules::RuleSet PlannedRuleSet(const rules::RuleSet& rules,
                              const OptimizationPlan& plan) {
  rules::RuleSet out = rules;
  for (const auto& drop : plan.drops) (void)out.Retire(drop.id);
  for (const auto& merge : plan.merges) {
    (void)out.Retire(merge.id_a);
    (void)out.Retire(merge.id_b);
    (void)out.Add(merge.merged);
  }
  for (const auto& prune : plan.prunes) (void)out.Disable(prune.id);
  return out;
}

}  // namespace rulekit::maint
