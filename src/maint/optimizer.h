#ifndef RULEKIT_MAINT_OPTIMIZER_H_
#define RULEKIT_MAINT_OPTIMIZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/data/product.h"
#include "src/maint/subsumption.h"
#include "src/rules/ids.h"
#include "src/rules/repository.h"
#include "src/rules/rule.h"
#include "src/rules/rule_set.h"

namespace rulekit::maint {

/// Knobs for the offline rule-set optimization pass (see DESIGN.md
/// "Rule-set optimization"). The defaults are deliberately conservative:
/// every enabled step preserves classification output on the reference
/// corpus — subsumption drops are language-level proofs, merges require
/// equal confidence, prunes require zero corpus coverage — so an operator
/// can apply a default plan without a behavioral review.
struct OptimizerOptions {
  /// Subsumption-scan knobs (literal prefilter on by default: only pairs
  /// the buckets cannot separate pay for a product DFA).
  SubsumptionOptions subsumption;
  /// Step (a): retire rules whose language is contained in another
  /// same-kind same-type rule.
  bool drop_subsumed = true;
  /// Step (b): consolidate high-Jaccard overlapping pairs into one
  /// disjunction rule.
  bool merge_overlapping = true;
  double merge_min_jaccard = 0.98;
  /// Maximum confidence difference between merge partners. The merged
  /// rule carries min(conf_a, conf_b) (ConsolidateRules), so 0.0 —
  /// equal-confidence pairs only — is what keeps voting output
  /// byte-identical after the merge.
  double merge_max_confidence_delta = 0.0;
  /// Step (c): disable low-value rules by the §5.2 scoring model,
  /// score = coverage_fraction x confidence over the reference corpus.
  bool prune_low_value = true;
  /// Prune when score <= this. The default 0.0 prunes only rules with
  /// zero corpus coverage (or zero confidence) — provably no output
  /// change on the corpus.
  double prune_score_threshold = 0.0;
  /// Never prune a rule at/above this confidence, whatever its score: a
  /// high-confidence analyst rule with no coverage in today's corpus is
  /// dormant, not worthless.
  double prune_confidence_ceiling = 0.9;
  /// Step (d): compute a corpus-aware re-bucketing sample so survivors
  /// land on their rarest required-literal set (RuleIndex's corpus-aware
  /// Build).
  bool rebucket = true;
  size_t rebucket_sample = 2048;
  /// Plan only this tenant's rules (default = the shared pool). The plan
  /// is applied through a transaction scoped to the same tenant, so the
  /// ownership rules of RuleRepository::Begin hold end to end.
  rules::TenantId tenant;
  /// Literal-extraction knobs shared by the scan and the re-bucketing.
  regex::AnalysisOptions analysis;
};

/// The output of PlanOptimization: every action the pass wants to take,
/// with the evidence that justifies it. A plan is inert data — nothing
/// changes until ApplyOptimizationPlan commits it (or a caller stages it
/// into a transaction of its own).
struct OptimizationPlan {
  struct Drop {
    std::string id;            // rule to retire
    std::string by;            // the rule whose language covers it
    bool equivalent = false;   // languages equal (tie-break kept `by`)
  };
  struct Merge {
    std::string id_a;
    std::string id_b;
    rules::Rule merged;        // replacement rule (id "id_a+id_b")
    double jaccard = 0.0;
    size_t coverage_a = 0;
    size_t coverage_b = 0;
    size_t intersection = 0;
  };
  struct Prune {
    std::string id;
    double confidence = 0.0;
    size_t coverage = 0;       // corpus items the rule fired on
    double score = 0.0;        // coverage_fraction x confidence (§5.2)
  };

  std::vector<Drop> drops;
  std::vector<Merge> merges;
  std::vector<Prune> prunes;

  /// The subsumption scan's accounting (prefilter refutations, anchored
  /// skips, fast-path hits).
  SubsumptionReport subsumption;
  size_t rules_considered = 0;  // active regex rules in planning scope
  size_t corpus_items = 0;
  /// Corpus items matched by pruned rules, summed. 0 means the prunes
  /// provably cannot change any corpus prediction; a nonzero value is the
  /// confidence-pruning delta an operator must sign off on.
  size_t prune_affected_items = 0;

  struct RebucketStats {
    size_t sample_titles = 0;
    size_t rebucketed_rules = 0;  // rules moved off their structural set
    double candidates_per_item_before = 0.0;  // structural index, pre-plan
    double candidates_per_item_after = 0.0;   // corpus-aware, post-plan
  };
  RebucketStats rebucket;

  /// The title sample behind `rebucket` — install as
  /// PipelineConfig::index_sample_titles so serving republishes build the
  /// same corpus-aware index the plan measured. Null when rebucketing was
  /// disabled or the corpus was empty.
  std::shared_ptr<const std::vector<std::string>> index_sample;

  bool empty() const {
    return drops.empty() && merges.empty() && prunes.empty();
  }
  /// One human-readable paragraph for shells and logs.
  std::string Summary() const;
};

/// Builds an optimization plan for the rules owned by `options.tenant`
/// within `rules`, scored against `corpus`. Pure analysis: mutates
/// nothing. An empty corpus skips the corpus-dependent steps (merge,
/// prune, re-bucket) and plans subsumption drops only.
OptimizationPlan PlanOptimization(const rules::RuleSet& rules,
                                  const std::vector<data::ProductItem>& corpus,
                                  const OptimizerOptions& options = {});

/// Stages every plan action into an open transaction: drops and merge
/// parts retire (audited with the reason), merged replacements add,
/// prunes disable (reversible — a pruned rule can be re-enabled when its
/// segment returns). Composes with other staged edits; commit is the
/// caller's.
Status StageOptimizationPlan(rules::RuleTransaction& txn,
                             const OptimizationPlan& plan);

struct OptimizeStats {
  size_t retired = 0;  // drops + 2 per merge
  size_t merged = 0;   // replacement rules added
  size_t pruned = 0;   // rules disabled
  bool applied = false;
};

/// Applies the plan through one repository transaction attributed to
/// `author` and scoped to `tenant` (WAL-journaled and republished like
/// any other commit). `dry_run` (and an empty plan) reports the stats
/// without opening a transaction.
Result<OptimizeStats> ApplyOptimizationPlan(
    rules::RuleRepository& repository, const OptimizationPlan& plan,
    std::string_view author, const rules::TenantId& tenant = {},
    bool dry_run = false);

/// The rule set as it would look after the plan applies: drops and merge
/// parts retired, merged rules added, prunes disabled. Lets tests and
/// benchmarks classify "after" without touching a repository.
rules::RuleSet PlannedRuleSet(const rules::RuleSet& rules,
                              const OptimizationPlan& plan);

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_OPTIMIZER_H_
