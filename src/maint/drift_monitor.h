#ifndef RULEKIT_MAINT_DRIFT_MONITOR_H_
#define RULEKIT_MAINT_DRIFT_MONITOR_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/taxonomy.h"
#include "src/rules/repository.h"
#include "src/rules/rule_set.h"

namespace rulekit::maint {

/// A rule flagged by the monitor.
struct DriftFlag {
  std::string rule_id;
  double windowed_precision = 1.0;
  size_t window_matches = 0;
};

/// Options for windowed precision monitoring.
struct DriftMonitorOptions {
  /// Verdicts kept per rule (sliding window).
  size_t window_size = 50;
  /// Minimum verdicts before a rule can be flagged.
  size_t min_verdicts = 10;
  /// Flag when windowed precision drops below this.
  double precision_floor = 0.85;
};

/// Tracks per-rule precision over a sliding window of sampled verdicts
/// and flags rules that have gone imprecise (§4 "Rule Maintenance",
/// challenges 1-2: imprecise rules sneak in, and once-good rules decay as
/// the product universe drifts).
class RulePrecisionMonitor {
 public:
  explicit RulePrecisionMonitor(DriftMonitorOptions options = {})
      : options_(options) {}

  /// Records one sampled verdict: the rule fired on an item and the
  /// verdict says whether its type was correct for that item.
  void RecordVerdict(const std::string& rule_id, bool correct);

  /// Windowed precision of a rule (1.0 if never observed).
  double WindowedPrecision(const std::string& rule_id) const;

  /// Rules currently below the precision floor, worst first.
  std::vector<DriftFlag> FlaggedRules() const;

 private:
  DriftMonitorOptions options_;
  std::unordered_map<std::string, std::deque<bool>> windows_;
};

/// Rules whose target type was retired by a taxonomy split and are thus
/// inapplicable (§4 example: rules written for "pants" after the split
/// into "work pants" and "jeans"). For each, reports the replacement
/// types an analyst should rewrite the rule against.
struct InapplicableRule {
  std::string rule_id;
  std::string retired_type;
  std::vector<std::string> replacements;
};

std::vector<InapplicableRule> FindInapplicableRules(
    const rules::RuleSet& rules, const data::Taxonomy& taxonomy);

/// Result of migrating rules across a taxonomy split.
struct SplitMigrationReport {
  std::vector<std::string> retired;  // old rules taken out of execution
  std::vector<std::string> drafted;  // new per-replacement rules, created
                                     // DISABLED pending analyst review
};

/// The §4 split workflow, mechanized: for every rule targeting a retired
/// type, retire it and draft one copy per replacement type (id suffixed
/// "@<replacement>") in the kDisabled state — the condition usually needs
/// analyst attention ("pants?" matches both work pants and jeans), so the
/// drafts never run until a human enables them.
SplitMigrationReport MigrateRulesAcrossSplit(
    rules::RuleRepository& repository, const data::Taxonomy& taxonomy,
    std::string_view author = "maintenance");

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_DRIFT_MONITOR_H_
