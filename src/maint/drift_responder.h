#ifndef RULEKIT_MAINT_DRIFT_RESPONDER_H_
#define RULEKIT_MAINT_DRIFT_RESPONDER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/trainer.h"
#include "src/maint/drift_monitor.h"

namespace rulekit::maint {

/// When and how the responder converts quality signals into retrains.
/// The defaults encode the thrash-freedom contract the benchmarks hold
/// the loop to: one drift episode causes at most one retrain.
struct DriftResponderPolicy {
  /// Hysteresis: consecutive *new* alarmed windows required before a
  /// degradation (or stale-spike / rule-flag) signal fires. One bad
  /// window never retrains on its own.
  size_t min_alarm_windows = 2;
  /// Quiet period after any fired retrain for the tenant — even a severe
  /// escalation respects it, which is what bounds retrains per episode.
  std::chrono::milliseconds cooldown{30'000};
  /// Severe alarms (Wilson upper bound below threshold) escalate: they
  /// bypass the hysteresis count and issue an *urgent* request that
  /// skips the trainer's min_interval / min_new_examples gates.
  bool escalate_severe = true;
  /// Stale-drop-rate trigger: fraction of cache lookups dropped stale
  /// over the last `stale_window` cache observations.
  double stale_drop_rate_threshold = 0.5;
  size_t stale_window = 4;
  /// RulePrecisionMonitor flags needed to count as an alarm signal
  /// (ignored when no rule monitor is attached).
  size_t min_flagged_rules = 3;
  /// Failure backoff: when a fired retrain's report comes back non-OK
  /// (e.g. a severed journal failing the publish Sync), the next fire is
  /// blocked for failure_cooldown x failure_backoff^(streak-1), capped
  /// by max_backoff — the responder backs off instead of hot-looping on
  /// a retrain that cannot succeed. A subsequent clean report resets it.
  std::chrono::milliseconds failure_cooldown{60'000};
  double failure_backoff = 2.0;
  double max_backoff = 16.0;
};

/// One tenant's responder state, snapshotted for status displays.
struct ResponderTenantStatus {
  std::string tenant;
  size_t consecutive_alarms = 0;
  size_t fires = 0;
  size_t failure_streak = 0;
  double backoff = 1.0;
  double cooldown_remaining_ms = 0.0;
  bool retrain_inflight = false;
};

/// The maintenance-side half of the self-healing loop (closing what PR 5
/// left open): watches every tenant's QualityMonitor signals —
/// DegradationAlarm / SevereDegradationAlarm, hot-cache stale-drop-rate
/// spikes, and RulePrecisionMonitor flags — and converts them into
/// policy-gated ChimeraPipeline::RequestRetrain calls. Every decision,
/// fired or suppressed, is recorded back into the monitor
/// (RecordResponder), so the loop audits itself.
///
/// Clocking: quality and cache histories are the responder's clocks — a
/// signal only advances the hysteresis count when a *new* window has been
/// recorded since the last evaluation, so polling faster than windows
/// arrive never inflates the count (and never double-fires).
///
/// Use EvaluateNow()/EvaluateTenant() for deterministic, synchronous
/// operation (tests, per-window experiment loops), or Start(interval) for
/// a background poll thread (the shell's `autoheal on`).
class DriftResponder {
 public:
  DriftResponder(chimera::ChimeraPipeline& pipeline,
                 chimera::QualityMonitor& monitor,
                 DriftResponderPolicy policy = {},
                 RulePrecisionMonitor* rule_monitor = nullptr);

  /// Stops the poll thread (if running). Outstanding retrain futures
  /// belong to the pipeline's trainer and are unaffected.
  ~DriftResponder();

  DriftResponder(const DriftResponder&) = delete;
  DriftResponder& operator=(const DriftResponder&) = delete;

  /// One evaluation pass over every tenant the monitor knows. Returns
  /// the decisions taken (one per tenant), also recorded into the
  /// monitor. Thread-safe; passes serialize.
  std::vector<chimera::ResponderDecision> EvaluateNow();

  /// Evaluates a single tenant.
  chimera::ResponderDecision EvaluateTenant(const std::string& tenant);

  /// Background mode: evaluate every `interval` until Stop().
  void Start(std::chrono::milliseconds interval);
  void Stop();
  bool running() const;

  /// Retrains fired since construction, all tenants.
  size_t fires() const;

  /// The most recent fired retrain's future for `tenant` (nullopt when
  /// none was ever fired). Tests wait on it; the responder itself
  /// harvests the report on a later evaluation to drive failure backoff.
  std::optional<std::shared_future<chimera::RetrainReport>> LastRetrain(
      const std::string& tenant) const;

  /// Per-tenant state snapshot for status displays.
  std::vector<ResponderTenantStatus> Status() const;

  const DriftResponderPolicy& policy() const { return policy_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct TenantState {
    size_t consecutive_alarms = 0;
    size_t fires = 0;
    /// Watermarks of the last-seen quality / cache windows (batch_index
    /// + count), so a re-poll without new data is a no-op.
    bool has_seen_quality = false;
    size_t last_quality_index = 0;
    bool has_seen_cache = false;
    size_t last_cache_index = 0;
    /// Cooldown gate: no fire before this instant.
    Clock::time_point next_fire_allowed{};
    /// Failure backoff, driven by harvested retrain reports.
    size_t failure_streak = 0;
    double backoff = 1.0;
    /// The most recent fire's future, pending harvest (cleared once its
    /// report has been folded into the backoff state).
    std::optional<std::shared_future<chimera::RetrainReport>> inflight;
    /// Same future, kept past harvest for LastRetrain observers.
    std::optional<std::shared_future<chimera::RetrainReport>> last_retrain;
  };

  chimera::ResponderDecision EvaluateLocked(const std::string& tenant,
                                            TenantState& state);
  void PollLoop(std::chrono::milliseconds interval);

  chimera::ChimeraPipeline& pipeline_;
  chimera::QualityMonitor& monitor_;
  const DriftResponderPolicy policy_;
  RulePrecisionMonitor* rule_monitor_;  // not owned; may be null

  mutable std::mutex mu_;
  std::map<std::string, TenantState> states_;
  size_t total_fires_ = 0;

  mutable std::mutex thread_mu_;  // guards start/stop transitions
  std::condition_variable stop_cv_;
  bool stop_ = true;
  std::thread thread_;
};

}  // namespace rulekit::maint

#endif  // RULEKIT_MAINT_DRIFT_RESPONDER_H_
