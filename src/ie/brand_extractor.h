#ifndef RULEKIT_IE_BRAND_EXTRACTOR_H_
#define RULEKIT_IE_BRAND_EXTRACTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/data/product.h"
#include "src/ie/attribute_extractor.h"
#include "src/text/dictionary.h"

namespace rulekit::ie {

/// Dictionary+context brand extraction (§6 IE: "a rule extracts a
/// substring s of t as the brand name if (a) s approximately matches a
/// string in a large given dictionary of brand names, and (b) the text
/// surrounding s conforms to a pre-specified pattern").
///
/// Context rules implemented: a dictionary hit counts as a brand if it is
/// at the start of the title, or follows "by"/"from", or is the only hit.
class BrandExtractor {
 public:
  explicit BrandExtractor(const std::vector<std::string>& brand_dictionary);

  /// The best brand extraction from the title, if any.
  std::optional<Extraction> ExtractBrand(
      const data::ProductItem& item) const;

  size_t dictionary_size() const { return dict_.size(); }

 private:
  text::Dictionary dict_;
};

}  // namespace rulekit::ie

#endif  // RULEKIT_IE_BRAND_EXTRACTOR_H_
