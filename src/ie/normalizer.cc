#include "src/ie/normalizer.h"

#include <cctype>

namespace rulekit::ie {

std::string Normalizer::Key(std::string_view s) {
  // Case-fold and strip punctuation; collapse whitespace runs.
  std::string key;
  bool pending_space = false;
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      if (pending_space && !key.empty()) key += ' ';
      pending_space = false;
      key += static_cast<char>(std::tolower(uc));
    } else if (std::isspace(uc)) {
      pending_space = true;
    }
    // Punctuation is dropped entirely ("ibm inc." == "ibm inc").
  }
  return key;
}

void Normalizer::AddRule(std::string canonical,
                         const std::vector<std::string>& variants) {
  variants_[Key(canonical)] = canonical;
  for (const auto& v : variants) {
    variants_[Key(v)] = canonical;
  }
}

std::string Normalizer::Normalize(std::string_view surface) const {
  auto it = variants_.find(Key(surface));
  return it == variants_.end() ? std::string(surface) : it->second;
}

bool Normalizer::Knows(std::string_view surface) const {
  return variants_.count(Key(surface)) > 0;
}

}  // namespace rulekit::ie
