#include "src/ie/attribute_extractor.h"

#include <unordered_set>

namespace rulekit::ie {

Status AttributeExtractor::AddPattern(std::string attribute,
                                      std::string_view pattern,
                                      int value_group) {
  auto re = regex::Regex::CompileCaseFolded(pattern);
  if (!re.ok()) return re.status();
  if (value_group >= re->num_captures()) {
    return Status::InvalidArgument(
        "value_group exceeds the pattern's capture count");
  }
  rules_.push_back(
      {std::move(attribute), std::move(re).value(), value_group});
  return Status::OK();
}

AttributeExtractor AttributeExtractor::WithDefaultRules() {
  AttributeExtractor ex;
  // Weight: "2.5 lb", "12oz", "1.2 kg".
  (void)ex.AddPattern("Item Weight",
                      "(\\d+(?:\\.\\d+)? ?(?:lbs?|oz|kg|g))(?:[^a-z]|$)", 0);
  // Dimensions: "5x7", "8 x 10".
  (void)ex.AddPattern("Size", "(\\d+ ?x ?\\d+)", 0);
  // Apparel size: "size m", "size 10".
  (void)ex.AddPattern("Size", "(size (?:xs|s|m|l|xl|xxl|\\d+))", 0);
  // Screen size: "15.6 inch".
  (void)ex.AddPattern("Size", "(\\d+(?:\\.\\d+)?) ?(?:inch|in\\.|\")", 0);
  // Pack count: "3 pack", "2-pack".
  (void)ex.AddPattern("Pack Count", "(\\d+)[ -]pack", 0);
  return ex;
}

std::vector<Extraction> AttributeExtractor::Extract(
    const data::ProductItem& item) const {
  std::vector<Extraction> out;
  std::unordered_set<std::string> already;
  for (const auto& rule : rules_) {
    if (already.count(rule.attribute)) continue;
    auto m = rule.pattern.Find(item.title);
    if (!m.has_value()) continue;
    size_t group = static_cast<size_t>(rule.value_group);
    if (group >= m->groups.size() || !m->groups[group].valid()) continue;
    const regex::Span& span = m->groups[group];
    out.push_back({rule.attribute,
                   std::string(item.title.substr(span.begin, span.length())),
                   span.begin, span.end});
    already.insert(rule.attribute);
  }
  return out;
}

}  // namespace rulekit::ie
