#ifndef RULEKIT_IE_ATTRIBUTE_EXTRACTOR_H_
#define RULEKIT_IE_ATTRIBUTE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/product.h"
#include "src/regex/regex.h"

namespace rulekit::ie {

/// One extracted attribute value with its provenance span in the title.
struct Extraction {
  std::string attribute;
  std::string value;
  size_t begin = 0;
  size_t end = 0;
};

/// Regex-rule-based attribute extraction from product titles (§6 IE:
/// "yet another set of rules apply regular expressions to extract weights,
/// sizes, and colors — instead of learning, it was easier to use regular
/// expressions to capture the appearance patterns of such attributes").
class AttributeExtractor {
 public:
  AttributeExtractor() = default;

  /// Registers an extraction rule: when `pattern` (case-folded) matches the
  /// title, capture group `value_group` becomes the value of `attribute`.
  Status AddPattern(std::string attribute, std::string_view pattern,
                    int value_group = 0);

  /// The stock rules: Item Weight ("2.5 lb", "12 oz"), Size ("5x7",
  /// "size m", "15.6 inch"), Pack Count ("3 pack").
  static AttributeExtractor WithDefaultRules();

  /// All extractions over the title, left to right, first rule wins per
  /// attribute.
  std::vector<Extraction> Extract(const data::ProductItem& item) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  struct ExtractionRule {
    std::string attribute;
    regex::Regex pattern;
    int value_group;
  };
  std::vector<ExtractionRule> rules_;
};

}  // namespace rulekit::ie

#endif  // RULEKIT_IE_ATTRIBUTE_EXTRACTOR_H_
