#include "src/ie/brand_extractor.h"

#include "src/common/string_util.h"

namespace rulekit::ie {

BrandExtractor::BrandExtractor(
    const std::vector<std::string>& brand_dictionary) {
  dict_.AddAll(brand_dictionary);
}

std::optional<Extraction> BrandExtractor::ExtractBrand(
    const data::ProductItem& item) const {
  auto matches = dict_.FindAll(item.title);
  if (matches.empty()) return std::nullopt;

  auto make = [&](const text::DictionaryMatch& m) {
    return Extraction{"Brand",
                      std::string(item.title.substr(m.begin, m.end - m.begin)),
                      m.begin, m.end};
  };

  std::string lowered = ToLowerAscii(item.title);
  for (const auto& m : matches) {
    // Context rule 1: title-initial brand ("dickies 38in ... jeans").
    if (m.begin == 0) return make(m);
    // Context rule 2: preceded by "by " or "from ".
    auto before = std::string_view(lowered).substr(0, m.begin);
    if (EndsWith(before, "by ") || EndsWith(before, "from ")) {
      return make(m);
    }
  }
  // Context rule 3: a unique dictionary hit is trusted anywhere.
  if (matches.size() == 1) return make(matches[0]);
  return std::nullopt;
}

}  // namespace rulekit::ie
