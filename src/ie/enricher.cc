#include "src/ie/enricher.h"

namespace rulekit::ie {

ProductEnricher::ProductEnricher(BrandExtractor brands,
                                 AttributeExtractor attributes,
                                 Normalizer normalizer,
                                 EnricherConfig config)
    : brands_(std::move(brands)), attributes_(std::move(attributes)),
      normalizer_(std::move(normalizer)), config_(config) {}

data::ProductItem ProductEnricher::Enrich(
    const data::ProductItem& item) const {
  data::ProductItem out = item;
  auto set_if_allowed = [&](const std::string& name,
                            const std::string& value) {
    if (!config_.overwrite_existing && out.HasAttribute(name)) return;
    out.SetAttribute(name, value);
  };
  if (auto brand = brands_.ExtractBrand(item); brand.has_value()) {
    set_if_allowed("Brand", normalizer_.Normalize(brand->value));
  }
  for (const auto& extraction : attributes_.Extract(item)) {
    set_if_allowed(extraction.attribute, extraction.value);
  }
  return out;
}

size_t ProductEnricher::EnrichAll(
    std::vector<data::ProductItem>& items) const {
  size_t added = 0;
  for (auto& item : items) {
    size_t before = item.attributes.size();
    item = Enrich(item);
    added += item.attributes.size() - before;
  }
  return added;
}

}  // namespace rulekit::ie
