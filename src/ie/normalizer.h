#ifndef RULEKIT_IE_NORMALIZER_H_
#define RULEKIT_IE_NORMALIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rulekit::ie {

/// Normalization rules mapping surface variants to canonical forms (§6 IE:
/// "another set of rules normalizes the extracted brand names (e.g.,
/// converting 'IBM', 'IBM Inc.', and 'the Big Blue' all into 'IBM
/// Corporation')"). Matching is case-insensitive and punctuation-tolerant.
class Normalizer {
 public:
  Normalizer() = default;

  /// Registers a canonical form and its variants. The canonical form maps
  /// to itself.
  void AddRule(std::string canonical,
               const std::vector<std::string>& variants);

  /// The canonical form of `surface`, or a copy of `surface` when no rule
  /// applies.
  std::string Normalize(std::string_view surface) const;

  /// True if some rule rewrites `surface`.
  bool Knows(std::string_view surface) const;

  size_t num_variants() const { return variants_.size(); }

 private:
  static std::string Key(std::string_view s);

  std::unordered_map<std::string, std::string> variants_;  // key -> canonical
};

}  // namespace rulekit::ie

#endif  // RULEKIT_IE_NORMALIZER_H_
