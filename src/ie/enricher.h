#ifndef RULEKIT_IE_ENRICHER_H_
#define RULEKIT_IE_ENRICHER_H_

#include <vector>

#include "src/data/product.h"
#include "src/ie/attribute_extractor.h"
#include "src/ie/brand_extractor.h"
#include "src/ie/normalizer.h"

namespace rulekit::ie {

/// Options for the enrichment pass.
struct EnricherConfig {
  /// Replace attributes the vendor already supplied. Default off: vendor
  /// data wins, extraction only fills gaps.
  bool overwrite_existing = false;
};

/// The §6 IE pipeline assembled: extract the brand (dictionary+context),
/// normalize it, extract regex attributes (weight/size/pack), and write
/// everything back onto the item. Enriched attributes immediately benefit
/// the attribute/value classifier and the learners — the paper's systems
/// feed each other exactly this way.
class ProductEnricher {
 public:
  ProductEnricher(BrandExtractor brands, AttributeExtractor attributes,
                  Normalizer normalizer, EnricherConfig config = {});

  /// Returns a copy of `item` with extracted attributes added.
  data::ProductItem Enrich(const data::ProductItem& item) const;

  /// Enriches items in place; returns the number of attributes added.
  size_t EnrichAll(std::vector<data::ProductItem>& items) const;

 private:
  BrandExtractor brands_;
  AttributeExtractor attributes_;
  Normalizer normalizer_;
  EnricherConfig config_;
};

}  // namespace rulekit::ie

#endif  // RULEKIT_IE_ENRICHER_H_
