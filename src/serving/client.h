#ifndef RULEKIT_SERVING_CLIENT_H_
#define RULEKIT_SERVING_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/serving/wire.h"

namespace rulekit::serving {

/// A blocking framed-TCP client for one RuleServer connection.
///
/// Two usage shapes:
///  - Call(): send one request, wait for its response (the simple RPC
///    shape; asserts the echoed request_id matches).
///  - Send() + Receive(): decoupled, for open-loop load generation —
///    fire requests at an offered rate on one thread while another
///    drains responses and matches them up by request_id.
///
/// Not thread-safe per side: at most one thread may Send (or Call) and
/// one may Receive at a time.
class RuleClient {
 public:
  /// Connects to 127.0.0.1:<port>.
  static Result<RuleClient> Connect(uint16_t port);

  RuleClient(RuleClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  RuleClient& operator=(RuleClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  RuleClient(const RuleClient&) = delete;
  RuleClient& operator=(const RuleClient&) = delete;
  ~RuleClient() { Close(); }

  /// Send + Receive, with the response matched to this request.
  Result<WireClassifyResponse> Call(const WireClassifyRequest& request);

  /// One rule-edit round trip. A read-only replica answers kReadOnly
  /// (as a decoded response, not an error); the primary applies the edit
  /// and reports the outcome.
  Result<WireRuleEditResponse> CallEdit(const WireRuleEditRequest& request);

  /// Writes one request frame (returns as soon as it is on the wire).
  Status Send(const WireClassifyRequest& request);

  /// Blocks for the next response frame (any request_id).
  Result<WireClassifyResponse> Receive();

  /// Half-closes the write side: the server's reader sees EOF and the
  /// connection winds down after in-flight responses drain.
  void FinishSending();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit RuleClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace rulekit::serving

#endif  // RULEKIT_SERVING_CLIENT_H_
