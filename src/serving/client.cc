#include "src/serving/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/string_util.h"

namespace rulekit::serving {

Result<RuleClient> RuleClient::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status st = Status::IOError(StrFormat("connect 127.0.0.1:%u: %s", port,
                                          std::strerror(errno)));
    ::close(fd);
    return st;
  }
  // Single-item requests are tiny frames; serving latency benefits from
  // them leaving now rather than riding Nagle's 40ms coattails.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return RuleClient(fd);
}

Status RuleClient::Send(const WireClassifyRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Encoder enc;
  EncodeRequestPayload(request, enc);
  return WriteFrame(fd_, FrameType::kClassifyRequest, enc.data());
}

Result<WireClassifyResponse> RuleClient::Receive() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  RULEKIT_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
  if (frame.type != FrameType::kClassifyResponse) {
    return Status::IOError("expected a ClassifyResponse frame");
  }
  return DecodeResponsePayload(frame.payload);
}

Result<WireClassifyResponse> RuleClient::Call(
    const WireClassifyRequest& request) {
  RULEKIT_RETURN_IF_ERROR(Send(request));
  RULEKIT_ASSIGN_OR_RETURN(WireClassifyResponse response, Receive());
  if (response.request_id != request.request_id) {
    return Status::Internal(StrFormat(
        "response id %llu does not match request id %llu (interleaved "
        "Call/Send on one connection?)",
        static_cast<unsigned long long>(response.request_id),
        static_cast<unsigned long long>(request.request_id)));
  }
  return response;
}

Result<WireRuleEditResponse> RuleClient::CallEdit(
    const WireRuleEditRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  Encoder enc;
  EncodeEditRequestPayload(request, enc);
  RULEKIT_RETURN_IF_ERROR(
      WriteFrame(fd_, FrameType::kRuleEditRequest, enc.data()));
  RULEKIT_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
  if (frame.type != FrameType::kRuleEditResponse) {
    return Status::IOError("expected a RuleEditResponse frame");
  }
  RULEKIT_ASSIGN_OR_RETURN(WireRuleEditResponse response,
                           DecodeEditResponsePayload(frame.payload));
  if (response.request_id != request.request_id) {
    return Status::Internal(StrFormat(
        "edit response id %llu does not match request id %llu",
        static_cast<unsigned long long>(response.request_id),
        static_cast<unsigned long long>(request.request_id)));
  }
  return response;
}

void RuleClient::FinishSending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void RuleClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace rulekit::serving
