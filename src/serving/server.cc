#include "src/serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/string_util.h"
#include "src/rules/rule_parser.h"

namespace rulekit::serving {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

WireClassifyResponse ErrorResponse(uint64_t request_id, WireCode code,
                                   std::string message) {
  WireClassifyResponse response;
  response.request_id = request_id;
  response.code = code;
  response.message = std::move(message);
  return response;
}

}  // namespace

RuleServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

RuleServer::RuleServer(const chimera::ChimeraPipeline& pipeline,
                       ServerConfig config)
    : pipeline_(pipeline),
      config_(config),
      limiter_(config.rate_limit_per_sec, config.rate_limit_burst) {}

RuleServer::~RuleServer() { Stop(); }

Status RuleServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError(
        StrFormat("bind 127.0.0.1:%u: %s", config_.port,
                  std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    Status st =
        Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status st =
        Status::IOError(StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  stopping_.store(false, std::memory_order_release);
  drain_and_exit_ = false;
  readers_ = std::make_unique<ThreadPool>(
      config_.io_threads == 0 ? 1 : config_.io_threads);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  acceptor_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void RuleServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: shutting the listener down fails the blocked
  //    accept() and the acceptor exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();

  // 2. Unblock every reader: half-close the read side so blocked
  //    ReadFrame()s see EOF. The write side stays open — responses for
  //    already-admitted requests still go out.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : connections_) {
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  readers_.reset();  // drains reader tasks

  // 3. Drain: the dispatcher answers everything already admitted (no
  //    coalesce-window dawdling in drain mode), then exits.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    drain_and_exit_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    connections_.clear();  // last refs close the sockets
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void RuleServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatally broken): stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>(fd);
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      id = next_conn_id_++;
      connections_.emplace(id, conn);
    }
    readers_->Submit([this, id, conn] {
      ReadLoop(conn);
      std::lock_guard<std::mutex> lock(conns_mu_);
      connections_.erase(id);
    });
  }
}

bool RuleServer::Coalescable(const Pending& pending) const {
  return pending.request.items.size() == 1 &&
         !pending.request.no_coalesce && !pending.request.require_durable;
}

void RuleServer::ReadLoop(const std::shared_ptr<Connection>& conn) {
  while (conn->alive.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(conn->fd);
    if (!frame.ok()) {
      // kNotFound = clean close between frames; anything else is a torn
      // frame or socket error. Either way this connection is done.
      conn->alive.store(false, std::memory_order_release);
      return;
    }
    if (frame->type == FrameType::kRuleEditRequest) {
      auto edit = DecodeEditRequestPayload(frame->payload);
      if (!edit.ok()) {
        invalid_requests_.fetch_add(1, std::memory_order_relaxed);
        WireRuleEditResponse response;
        response.code = WireCode::kInvalidArgument;
        response.message = edit.status().message();
        RespondEdit(*conn, response);
        continue;
      }
      HandleEdit(*conn, std::move(*edit));
      continue;
    }
    if (frame->type != FrameType::kClassifyRequest) {
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn, ErrorResponse(0, WireCode::kInvalidArgument,
                                   "expected a ClassifyRequest frame"));
      continue;
    }
    auto decoded = DecodeRequestPayload(frame->payload);
    if (!decoded.ok()) {
      // The frame boundary was intact (length prefix consumed exactly),
      // so the stream is not desynced — report and keep reading.
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn, ErrorResponse(0, WireCode::kInvalidArgument,
                                   decoded.status().message()));
      continue;
    }
    const Clock::time_point now = Clock::now();
    WireClassifyRequest request = std::move(*decoded);

    if (request.items.empty()) {
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn, ErrorResponse(request.request_id,
                                   WireCode::kInvalidArgument,
                                   "empty item batch"));
      continue;
    }
    if (request.items.size() > config_.max_items_per_request) {
      invalid_requests_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn,
              ErrorResponse(
                  request.request_id, WireCode::kInvalidArgument,
                  StrFormat("batch of %zu items exceeds the per-request "
                            "limit of %zu",
                            request.items.size(),
                            config_.max_items_per_request)));
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      unavailable_rejects_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn, ErrorResponse(request.request_id, WireCode::kUnavailable,
                                   "server shutting down"));
      continue;
    }
    // Admission control, in policy order (see DESIGN.md): rate limit
    // first (a flooding client is refused before it can occupy queue
    // space), then the bounded queue, then deadline bookkeeping.
    if (!limiter_.Admit(request.tenant, now)) {
      rate_limit_rejects_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn,
              ErrorResponse(request.request_id, WireCode::kOverloaded,
                            StrFormat("client '%s' is over its rate limit",
                                      request.tenant.c_str())));
      continue;
    }

    Pending pending;
    pending.conn = conn;
    pending.admitted = now;
    if (request.deadline_ms > 0) {
      pending.deadline =
          now + std::chrono::milliseconds(request.deadline_ms);
    }
    pending.request = std::move(request);

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < config_.max_pending && !drain_and_exit_) {
        queue_.push_back(std::move(pending));
        enqueued = true;
      }
    }
    if (!enqueued) {
      queue_full_rejects_.fetch_add(1, std::memory_order_relaxed);
      Respond(*conn,
              ErrorResponse(pending.request.request_id,
                            WireCode::kOverloaded,
                            StrFormat("pending queue full (%zu requests)",
                                      config_.max_pending)));
      continue;
    }
    requests_admitted_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
  }
}

void RuleServer::DispatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || drain_and_exit_; });
      if (queue_.empty()) {
        if (drain_and_exit_) return;
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();

      if (Coalescable(batch.front())) {
        // Hold the batch open for more coalescable same-tenant arrivals
        // until the window closes or the batch fills. In drain mode the
        // window is skipped — whatever is queued goes out now.
        batch.reserve(config_.max_coalesce_batch);
        // By value: push_back may reallocate `batch` and a reference
        // into front() would dangle.
        const std::string tenant = batch.front().request.tenant;
        const auto window_end =
            Clock::now() + (drain_and_exit_ ? std::chrono::microseconds(0)
                                            : config_.coalesce_window);
        for (;;) {
          for (auto it = queue_.begin();
               it != queue_.end() &&
               batch.size() < config_.max_coalesce_batch;) {
            if (Coalescable(*it) && it->request.tenant == tenant) {
              batch.push_back(std::move(*it));
              it = queue_.erase(it);
            } else {
              ++it;
            }
          }
          if (batch.size() >= config_.max_coalesce_batch) break;
          if (drain_and_exit_) break;
          if (queue_cv_.wait_until(lock, window_end) ==
              std::cv_status::timeout) {
            // One final sweep below the timeout: arrivals that squeaked
            // in between the last scan and the timeout still merge.
            for (auto it = queue_.begin();
                 it != queue_.end() &&
                 batch.size() < config_.max_coalesce_batch;) {
              if (Coalescable(*it) && it->request.tenant == tenant) {
                batch.push_back(std::move(*it));
                it = queue_.erase(it);
              } else {
                ++it;
              }
            }
            break;
          }
        }
      }
    }
    DispatchBatch(std::move(batch));
  }
}

void RuleServer::DispatchBatch(std::vector<Pending> batch) {
  const Clock::time_point dispatch_start = Clock::now();

  // Deadline shedding: a request whose deadline passed while it queued
  // is answered kDeadlineExceeded without costing pipeline time.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& pending : batch) {
    if (pending.deadline.has_value() && *pending.deadline <= dispatch_start) {
      deadline_sheds_.fetch_add(1, std::memory_order_relaxed);
      RespondAdmitted(pending,
                      ErrorResponse(pending.request.request_id,
                                    WireCode::kDeadlineExceeded,
                                    "deadline expired in the queue"));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  std::vector<data::ProductItem> items;
  size_t total_items = 0;
  for (const auto& pending : live) total_items += pending.request.items.size();
  items.reserve(total_items);
  for (auto& pending : live) {
    for (auto& item : pending.request.items) items.push_back(std::move(item));
  }

  chimera::ClassifyRequest request;
  request.tenant = rules::TenantId(live.front().request.tenant);
  request.items = items;
  if (live.size() == 1) {
    // A lone dispatch keeps its own constraints end to end; a merged one
    // already had per-member deadlines checked above and only contains
    // members without durability demands (Coalescable()).
    request.options.require_durable = live.front().request.require_durable;
    request.deadline = live.front().deadline;
  }
  chimera::ClassifyResponse result = pipeline_.Classify(request);
  const Clock::time_point done = Clock::now();

  batches_dispatched_.fetch_add(1, std::memory_order_relaxed);
  batch_size_.Record(live.size());
  if (live.size() > 1) {
    coalesced_requests_.fetch_add(live.size(), std::memory_order_relaxed);
  }

  if (live.size() == 1) {
    RespondAdmitted(live.front(),
                    ResponseFrom(live.front().request.request_id, result));
  } else {
    // Fan the merged report back out: member i owns prediction slice
    // [offset, offset + its item count). Per-member counters reduce to
    // "classified or not" — full stage attribution exists only for the
    // merged batch (DESIGN.md documents the tradeoff).
    size_t offset = 0;
    for (const auto& pending : live) {
      const size_t count = pending.request.items.size();
      WireClassifyResponse response;
      response.request_id = pending.request.request_id;
      response.code = CodeFor(result.status);
      response.message = result.status.message();
      response.total = count;
      for (size_t i = 0; i < count; ++i) {
        const auto& prediction = result.report.predictions[offset + i];
        if (prediction.has_value()) ++response.classified;
        response.predictions.push_back(prediction);
      }
      offset += count;
      RespondAdmitted(pending, response);
    }
  }

  if (config_.monitor != nullptr) {
    const uint64_t overload = rate_limit_rejects_.load() +
                              queue_full_rejects_.load();
    const uint64_t sheds = deadline_sheds_.load();
    chimera::ServingActivity activity;
    activity.batch_index = batches_dispatched_.load() - 1;
    activity.requests = live.size();
    activity.batch_size = total_items;
    activity.overload_rejects = overload - reported_overload_;
    activity.deadline_sheds = sheds - reported_sheds_;
    activity.queue_wait_ms =
        static_cast<double>(
            ElapsedUs(live.front().admitted, dispatch_start)) /
        1000.0;
    activity.service_ms =
        static_cast<double>(ElapsedUs(dispatch_start, done)) / 1000.0;
    activity.rules_executed = result.report.rules_executed;
    activity.rule_items = result.report.rule_items;
    reported_overload_ = overload;
    reported_sheds_ = sheds;
    config_.monitor->RecordServing(activity, live.front().request.tenant);

    // Cache counters ride along under the same batch index, so a
    // network-served tenant's stale-drop-rate spike (a drifting feed
    // invalidating its memoized winners) is visible to the
    // DriftResponder exactly like an in-process stream's.
    chimera::CacheActivity cache;
    cache.batch_index = activity.batch_index;
    cache.lookups =
        result.report.cache_hits + result.report.cache_misses;
    cache.hits = result.report.cache_hits;
    cache.stale_drops = result.report.cache_stale_drops;
    cache.promotions = result.report.cache_promotions;
    cache.evictions = result.report.cache_evictions;
    if (cache.lookups > 0) {
      config_.monitor->RecordCache(cache, live.front().request.tenant);
    }
  }
}

void RuleServer::Respond(Connection& conn,
                         const WireClassifyResponse& response) {
  Encoder enc;
  EncodeResponsePayload(response, enc);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  Status st = WriteFrame(conn.fd, FrameType::kClassifyResponse, enc.data());
  if (!st.ok()) {
    // The peer is gone (or the pipe broke): fail the read loop too.
    conn.alive.store(false, std::memory_order_release);
    ::shutdown(conn.fd, SHUT_RDWR);
  }
}

void RuleServer::RespondEdit(Connection& conn,
                             const WireRuleEditResponse& response) {
  Encoder enc;
  EncodeEditResponsePayload(response, enc);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  Status st = WriteFrame(conn.fd, FrameType::kRuleEditResponse, enc.data());
  if (!st.ok()) {
    conn.alive.store(false, std::memory_order_release);
    ::shutdown(conn.fd, SHUT_RDWR);
  }
}

void RuleServer::HandleEdit(Connection& conn, WireRuleEditRequest request) {
  WireRuleEditResponse response;
  response.request_id = request.request_id;
  if (config_.writer == nullptr) {
    edits_refused_readonly_.fetch_add(1, std::memory_order_relaxed);
    response.code = WireCode::kReadOnly;
    response.message =
        "this server is a read-only replica; send rule edits to the primary";
    RespondEdit(conn, response);
    return;
  }
  chimera::ChimeraPipeline& writer = *config_.writer;
  const rules::TenantId tenant{request.tenant};
  Status status;
  uint64_t rules_added = 0;
  switch (request.op) {
    case EditOp::kAddRules: {
      auto parsed = rules::ParseRules(request.rule_dsl,
                                      writer.config().storage.dictionaries);
      if (!parsed.ok()) {
        status = parsed.status();
        break;
      }
      rules_added = parsed->size();
      status = writer.AddRules(std::move(*parsed), request.author, tenant);
      break;
    }
    case EditOp::kDisable:
      status = writer.Mutate(
          request.author,
          [&](rules::RuleTransaction& txn) {
            return txn.Disable(rules::RuleId(request.rule_id),
                               request.detail);
          },
          tenant);
      break;
    case EditOp::kEnable:
      status = writer.Mutate(
          request.author,
          [&](rules::RuleTransaction& txn) {
            return txn.Enable(rules::RuleId(request.rule_id));
          },
          tenant);
      break;
    case EditOp::kRetire:
      status = writer.Mutate(
          request.author,
          [&](rules::RuleTransaction& txn) {
            return txn.Retire(rules::RuleId(request.rule_id), request.detail);
          },
          tenant);
      break;
    case EditOp::kSetConfidence:
      status = writer.Mutate(
          request.author,
          [&](rules::RuleTransaction& txn) {
            return txn.SetConfidence(rules::RuleId(request.rule_id),
                                     request.confidence);
          },
          tenant);
      break;
  }
  if (status.ok()) {
    edits_applied_.fetch_add(1, std::memory_order_relaxed);
    response.rules_added = rules_added;
  } else {
    edit_failures_.fetch_add(1, std::memory_order_relaxed);
    response.code = CodeFor(status);
    response.message = status.message();
  }
  RespondEdit(conn, response);
}

void RuleServer::RespondAdmitted(const Pending& pending,
                                 const WireClassifyResponse& response) {
  queue_wait_us_.Record(ElapsedUs(pending.admitted, Clock::now()));
  Respond(*pending.conn, response);
  latency_us_.Record(ElapsedUs(pending.admitted, Clock::now()));
}

ServerStats RuleServer::stats() const {
  ServerStats stats;
  stats.connections_accepted = connections_accepted_.load();
  stats.requests_admitted = requests_admitted_.load();
  stats.invalid_requests = invalid_requests_.load();
  stats.rate_limit_rejects = rate_limit_rejects_.load();
  stats.queue_full_rejects = queue_full_rejects_.load();
  stats.deadline_sheds = deadline_sheds_.load();
  stats.unavailable_rejects = unavailable_rejects_.load();
  stats.batches_dispatched = batches_dispatched_.load();
  stats.coalesced_requests = coalesced_requests_.load();
  stats.edits_applied = edits_applied_.load();
  stats.edits_refused_readonly = edits_refused_readonly_.load();
  stats.edit_failures = edit_failures_.load();
  stats.latency_us = latency_us_.TakeSnapshot();
  stats.queue_wait_us = queue_wait_us_.TakeSnapshot();
  stats.batch_size = batch_size_.TakeSnapshot();
  return stats;
}

}  // namespace rulekit::serving
