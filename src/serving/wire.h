#ifndef RULEKIT_SERVING_WIRE_H_
#define RULEKIT_SERVING_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chimera/request.h"
#include "src/common/binary_codec.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/data/product.h"

namespace rulekit::serving {

/// Wire protocol version 1 (see DESIGN.md "Serving front-end").
///
/// Every frame is
///
///   u32 LE payload length | u8 frame type | payload bytes
///
/// where the length covers the payload only (not itself, not the type
/// byte). Payload integers are little-endian; variable-length quantities
/// are LEB128 varints; strings are varint-length-prefixed bytes — the
/// exact conventions of the durable store's record formats, implemented
/// by the shared rulekit::Encoder/Decoder.

/// Frame type bytes. Pinned: these are the wire format — never renumber;
/// add new types at the end. Types 3+ arrived with the replication
/// subsystem (DESIGN.md §10): rule edits over the wire (so a primary's
/// server can accept writes and a follower's can refuse them with
/// kReadOnly), and the log-shipping stream frames (payload codecs in
/// src/replication/protocol.h).
enum class FrameType : uint8_t {
  kClassifyRequest = 1,
  kClassifyResponse = 2,
  kRuleEditRequest = 3,
  kRuleEditResponse = 4,
  kReplicaSubscribe = 5,     // follower -> primary: tenants + resume position
  kReplicaSubscribeAck = 6,  // primary -> follower: accepted / refused
  kReplicaRecord = 7,        // primary -> follower: one commit record
  kReplicaHeartbeat = 8,     // primary -> follower: position advance, no data
  kReplicaAck = 9,           // follower -> primary: applied-through position
};

/// The highest assigned frame type (transport-level validation bound).
inline constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kReplicaAck);

/// Response status codes on the wire. Pinned: clients in other languages
/// hard-code these values, so they must never be renumbered — add new
/// codes at the end.
enum class WireCode : uint8_t {
  kOk = 0,
  /// The frame decoded but the request is malformed (empty batch, item
  /// count over the server's limit, unknown flags).
  kInvalidArgument = 1,
  /// Admission control refused: the client is over its rate limit or the
  /// server's pending queue is full. Retry with backoff.
  kOverloaded = 2,
  /// The request's deadline passed before the pipeline ran (shed from
  /// the queue, or already expired on arrival).
  kDeadlineExceeded = 3,
  /// The server cannot serve at all right now: shutting down, or the
  /// request required durability while the journal is severed.
  kUnavailable = 4,
  /// Anything else — a pipeline-side failure the codes above don't
  /// describe.
  kInternal = 5,
  /// The server is a read-only replica: it serves Classify traffic but
  /// refuses every rule-edit frame. Write to the primary instead.
  kReadOnly = 6,
};

/// The highest assigned wire code (decode-side validation bound).
inline constexpr uint8_t kMaxWireCode = static_cast<uint8_t>(WireCode::kReadOnly);

/// The wire code a pipeline/server Status maps to. Stable: kOk for OK,
/// kResourceExhausted -> kOverloaded, kDeadlineExceeded and kUnavailable
/// to their namesakes, everything else -> kInternal.
WireCode CodeFor(const Status& status);

/// The in-process Status a wire code maps back to (message attached).
/// Round-trips with CodeFor for every pinned code.
Status StatusFor(WireCode code, const std::string& message);

/// ClassifyRequest frame flag bits (u8 on the wire; unknown bits fail
/// decoding so they can be assigned meaning later).
inline constexpr uint8_t kFlagNoCoalesce = 0x01;
inline constexpr uint8_t kFlagRequireDurable = 0x02;
inline constexpr uint8_t kKnownFlags = kFlagNoCoalesce | kFlagRequireDurable;

/// A decoded ClassifyRequest frame payload:
///
///   varint request_id | string tenant | varint deadline_ms (0 = none)
///   | u8 flags | varint item_count
///   | item_count x (string id | string title
///                   | varint attr_count | attr_count x (string, string))
///
/// `request_id` is an opaque client token echoed verbatim on the
/// response so one connection can have several requests in flight.
/// `deadline_ms` is a relative budget (the wire cannot carry an absolute
/// steady_clock point); the server anchors it at decode time.
struct WireClassifyRequest {
  uint64_t request_id = 0;
  std::string tenant;
  uint64_t deadline_ms = 0;  // 0 = no deadline
  bool no_coalesce = false;
  bool require_durable = false;
  std::vector<data::ProductItem> items;
};

/// A decoded ClassifyResponse frame payload:
///
///   varint request_id | u8 code | string message
///   | varint total | varint gate_classified | varint gate_rejected
///   | varint classified | varint filtered | varint suppressed
///   | varint declined | varint cache_hits
///   | varint prediction_count | prediction_count x (u8 has | string)
///
/// The report counters mirror chimera::BatchReport's classification
/// accounting. A coalesced single-item request gets per-request numbers:
/// total = 1 and its own prediction, with the coarse counters reduced to
/// that item's outcome (classified or not) — full stage attribution is
/// only meaningful for the whole merged batch (see DESIGN.md).
struct WireClassifyResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;
  uint64_t total = 0;
  uint64_t gate_classified = 0;
  uint64_t gate_rejected = 0;
  uint64_t classified = 0;
  uint64_t filtered = 0;
  uint64_t suppressed = 0;
  uint64_t declined = 0;
  uint64_t cache_hits = 0;
  std::vector<std::optional<std::string>> predictions;
};

/// Rule-edit operations a client can request over the wire. Pinned
/// byte values, append-only like the frame types.
enum class EditOp : uint8_t {
  kAddRules = 0,       // rule_dsl holds one or more rules in DSL text
  kDisable = 1,
  kEnable = 2,
  kRetire = 3,
  kSetConfidence = 4,
};

/// A decoded RuleEditRequest frame payload:
///
///   varint request_id | string tenant | string author | u8 op
///   | string rule_dsl (kAddRules; else empty)
///   | string rule_id (ops on an existing rule; else empty)
///   | double confidence (kSetConfidence; else 0)
///   | string detail (audit note)
///
/// The edit runs as one pipeline transaction scoped to `tenant`; the
/// server journals it ahead of publication like any local mutation, so a
/// wire edit ships to followers exactly like an in-process one.
struct WireRuleEditRequest {
  uint64_t request_id = 0;
  std::string tenant;
  std::string author;
  EditOp op = EditOp::kAddRules;
  std::string rule_dsl;
  std::string rule_id;
  double confidence = 0.0;
  std::string detail;
};

/// A decoded RuleEditResponse frame payload:
///
///   varint request_id | u8 code | string message | varint rules_added
struct WireRuleEditResponse {
  uint64_t request_id = 0;
  WireCode code = WireCode::kOk;
  std::string message;
  uint64_t rules_added = 0;
};

/// Payload codecs (frame header excluded — the transport adds it).
void EncodeRequestPayload(const WireClassifyRequest& request, Encoder& enc);
Result<WireClassifyRequest> DecodeRequestPayload(std::string_view payload);
void EncodeResponsePayload(const WireClassifyResponse& response,
                           Encoder& enc);
Result<WireClassifyResponse> DecodeResponsePayload(std::string_view payload);
void EncodeEditRequestPayload(const WireRuleEditRequest& request,
                              Encoder& enc);
Result<WireRuleEditRequest> DecodeEditRequestPayload(std::string_view payload);
void EncodeEditResponsePayload(const WireRuleEditResponse& response,
                               Encoder& enc);
Result<WireRuleEditResponse> DecodeEditResponsePayload(
    std::string_view payload);

/// Builds a response payload from a pipeline result (request_id echoed,
/// Status mapped through CodeFor, report counters copied).
WireClassifyResponse ResponseFrom(uint64_t request_id,
                                  const chimera::ClassifyResponse& result);

/// Frames larger than this are refused on both ends: a corrupt or
/// hostile length prefix must not make a reader allocate gigabytes.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Blocking framed-transport helpers over a connected socket fd. Both
/// retry EINTR; short reads mean the peer closed (kNotFound signals a
/// clean EOF on a frame boundary, kIOError a torn frame or socket
/// error).
Status WriteFrame(int fd, FrameType type, std::string_view payload);
struct Frame {
  FrameType type;
  std::string payload;
};
Result<Frame> ReadFrame(int fd);

}  // namespace rulekit::serving

#endif  // RULEKIT_SERVING_WIRE_H_
