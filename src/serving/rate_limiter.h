#ifndef RULEKIT_SERVING_RATE_LIMITER_H_
#define RULEKIT_SERVING_RATE_LIMITER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rulekit::serving {

/// A token bucket: `rate_per_sec` tokens accrue continuously up to
/// `burst`; each admitted request spends one. A zero/negative rate
/// disables limiting (every TryAcquire succeeds). Not thread-safe —
/// RateLimiter below provides the locking.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst,
              std::chrono::steady_clock::time_point now)
      : rate_(rate_per_sec), burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_), last_(now) {}

  /// Spends one token if available; false = over limit right now.
  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    if (rate_ <= 0.0) return true;
    Refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens(std::chrono::steady_clock::time_point now) {
    Refill(now);
    return tokens_;
  }

 private:
  void Refill(std::chrono::steady_clock::time_point now) {
    if (now <= last_) return;
    double elapsed = std::chrono::duration<double>(now - last_).count();
    tokens_ = tokens_ + elapsed * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

/// Per-client admission limiter: one token bucket per client key (the
/// serving front-end keys by tenant, so "client" and "tenant" coincide
/// on the wire — a noisy tenant exhausts its own bucket, never a quiet
/// neighbour's). Buckets are created on first sight with the shared
/// rate/burst. Thread-safe.
class RateLimiter {
 public:
  /// rate_per_sec <= 0 disables limiting entirely.
  RateLimiter(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst) {}

  /// True if `client`'s bucket admits one more request at `now`.
  bool Admit(const std::string& client,
             std::chrono::steady_clock::time_point now) {
    if (rate_ <= 0.0) return true;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(client);
    if (it == buckets_.end()) {
      it = buckets_.emplace(client, TokenBucket(rate_, burst_, now)).first;
    }
    return it->second.TryAcquire(now);
  }

  bool enabled() const { return rate_ > 0.0; }

 private:
  const double rate_;
  const double burst_;
  std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace rulekit::serving

#endif  // RULEKIT_SERVING_RATE_LIMITER_H_
