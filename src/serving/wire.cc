#include "src/serving/wire.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/string_util.h"

namespace rulekit::serving {

WireCode CodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kResourceExhausted:
      return WireCode::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return WireCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
    default:
      return WireCode::kInternal;
  }
}

Status StatusFor(WireCode code, const std::string& message) {
  switch (code) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireCode::kOverloaded:
      return Status::ResourceExhausted(message);
    case WireCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case WireCode::kUnavailable:
      return Status::Unavailable(message);
    case WireCode::kInternal:
      return Status::Internal(message);
    case WireCode::kReadOnly:
      return Status::FailedPrecondition(message);
  }
  return Status::Internal(message);  // unreachable for pinned codes
}

void EncodeRequestPayload(const WireClassifyRequest& request, Encoder& enc) {
  enc.PutVarint(request.request_id);
  enc.PutString(request.tenant);
  enc.PutVarint(request.deadline_ms);
  uint8_t flags = 0;
  if (request.no_coalesce) flags |= kFlagNoCoalesce;
  if (request.require_durable) flags |= kFlagRequireDurable;
  enc.PutU8(flags);
  enc.PutVarint(request.items.size());
  for (const auto& item : request.items) {
    enc.PutString(item.id);
    enc.PutString(item.title);
    enc.PutVarint(item.attributes.size());
    for (const auto& [name, value] : item.attributes) {
      enc.PutString(name);
      enc.PutString(value);
    }
  }
}

Result<WireClassifyRequest> DecodeRequestPayload(std::string_view payload) {
  Decoder dec(payload);
  WireClassifyRequest request;
  request.request_id = dec.Varint();
  request.tenant = dec.String();
  request.deadline_ms = dec.Varint();
  uint8_t flags = dec.U8();
  if (dec.ok() && (flags & ~kKnownFlags) != 0) {
    dec.Fail(StrFormat("unknown request flags 0x%02x", flags));
  }
  request.no_coalesce = (flags & kFlagNoCoalesce) != 0;
  request.require_durable = (flags & kFlagRequireDurable) != 0;
  uint64_t item_count = dec.Varint();
  // Each item costs at least 3 payload bytes (two empty strings + attr
  // count), so an item_count beyond payload size is a corrupt frame, not
  // a big batch — refuse before reserving anything.
  if (dec.ok() && item_count > payload.size()) {
    dec.Fail(StrFormat("item count %llu exceeds payload size",
                       static_cast<unsigned long long>(item_count)));
  }
  if (dec.ok()) request.items.reserve(item_count);
  for (uint64_t i = 0; dec.ok() && i < item_count; ++i) {
    data::ProductItem item;
    item.id = dec.String();
    item.title = dec.String();
    uint64_t attr_count = dec.Varint();
    if (dec.ok() && attr_count > payload.size()) {
      dec.Fail(StrFormat("attribute count %llu exceeds payload size",
                         static_cast<unsigned long long>(attr_count)));
    }
    for (uint64_t a = 0; dec.ok() && a < attr_count; ++a) {
      std::string name = dec.String();
      std::string value = dec.String();
      item.attributes.emplace_back(std::move(name), std::move(value));
    }
    request.items.push_back(std::move(item));
  }
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after ClassifyRequest payload",
        payload.size() - dec.position()));
  }
  return request;
}

void EncodeResponsePayload(const WireClassifyResponse& response,
                           Encoder& enc) {
  enc.PutVarint(response.request_id);
  enc.PutU8(static_cast<uint8_t>(response.code));
  enc.PutString(response.message);
  enc.PutVarint(response.total);
  enc.PutVarint(response.gate_classified);
  enc.PutVarint(response.gate_rejected);
  enc.PutVarint(response.classified);
  enc.PutVarint(response.filtered);
  enc.PutVarint(response.suppressed);
  enc.PutVarint(response.declined);
  enc.PutVarint(response.cache_hits);
  enc.PutVarint(response.predictions.size());
  for (const auto& prediction : response.predictions) {
    enc.PutU8(prediction.has_value() ? 1 : 0);
    enc.PutString(prediction.has_value() ? *prediction
                                         : std::string_view());
  }
}

Result<WireClassifyResponse> DecodeResponsePayload(
    std::string_view payload) {
  Decoder dec(payload);
  WireClassifyResponse response;
  response.request_id = dec.Varint();
  uint8_t code = dec.U8();
  if (dec.ok() && code > kMaxWireCode) {
    dec.Fail(StrFormat("unknown response code %u", code));
  }
  response.code = static_cast<WireCode>(code);
  response.message = dec.String();
  response.total = dec.Varint();
  response.gate_classified = dec.Varint();
  response.gate_rejected = dec.Varint();
  response.classified = dec.Varint();
  response.filtered = dec.Varint();
  response.suppressed = dec.Varint();
  response.declined = dec.Varint();
  response.cache_hits = dec.Varint();
  uint64_t prediction_count = dec.Varint();
  if (dec.ok() && prediction_count > payload.size()) {
    dec.Fail(StrFormat("prediction count %llu exceeds payload size",
                       static_cast<unsigned long long>(prediction_count)));
  }
  if (dec.ok()) response.predictions.reserve(prediction_count);
  for (uint64_t i = 0; dec.ok() && i < prediction_count; ++i) {
    uint8_t has = dec.U8();
    std::string value = dec.String();
    if (dec.ok() && has > 1) {
      dec.Fail(StrFormat("bad prediction presence byte %u", has));
    }
    if (has != 0) {
      response.predictions.push_back(std::move(value));
    } else {
      response.predictions.push_back(std::nullopt);
    }
  }
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after ClassifyResponse payload",
        payload.size() - dec.position()));
  }
  return response;
}

void EncodeEditRequestPayload(const WireRuleEditRequest& request,
                              Encoder& enc) {
  enc.PutVarint(request.request_id);
  enc.PutString(request.tenant);
  enc.PutString(request.author);
  enc.PutU8(static_cast<uint8_t>(request.op));
  enc.PutString(request.rule_dsl);
  enc.PutString(request.rule_id);
  enc.PutDouble(request.confidence);
  enc.PutString(request.detail);
}

Result<WireRuleEditRequest> DecodeEditRequestPayload(
    std::string_view payload) {
  Decoder dec(payload);
  WireRuleEditRequest request;
  request.request_id = dec.Varint();
  request.tenant = dec.String();
  request.author = dec.String();
  uint8_t op = dec.U8();
  if (dec.ok() && op > static_cast<uint8_t>(EditOp::kSetConfidence)) {
    dec.Fail(StrFormat("unknown edit op %u", op));
  }
  request.op = static_cast<EditOp>(op);
  request.rule_dsl = dec.String();
  request.rule_id = dec.String();
  request.confidence = dec.F64();
  request.detail = dec.String();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after RuleEditRequest payload",
        payload.size() - dec.position()));
  }
  return request;
}

void EncodeEditResponsePayload(const WireRuleEditResponse& response,
                               Encoder& enc) {
  enc.PutVarint(response.request_id);
  enc.PutU8(static_cast<uint8_t>(response.code));
  enc.PutString(response.message);
  enc.PutVarint(response.rules_added);
}

Result<WireRuleEditResponse> DecodeEditResponsePayload(
    std::string_view payload) {
  Decoder dec(payload);
  WireRuleEditResponse response;
  response.request_id = dec.Varint();
  uint8_t code = dec.U8();
  if (dec.ok() && code > kMaxWireCode) {
    dec.Fail(StrFormat("unknown response code %u", code));
  }
  response.code = static_cast<WireCode>(code);
  response.message = dec.String();
  response.rules_added = dec.Varint();
  if (!dec.ok()) return dec.status();
  if (!dec.AtEnd()) {
    return Status::InvalidArgument(StrFormat(
        "%zu trailing bytes after RuleEditResponse payload",
        payload.size() - dec.position()));
  }
  return response;
}

WireClassifyResponse ResponseFrom(uint64_t request_id,
                                  const chimera::ClassifyResponse& result) {
  WireClassifyResponse response;
  response.request_id = request_id;
  response.code = CodeFor(result.status);
  response.message = result.status.message();
  const chimera::BatchReport& report = result.report;
  response.total = report.total;
  response.gate_classified = report.gate_classified;
  response.gate_rejected = report.gate_rejected;
  response.classified = report.classified;
  response.filtered = report.filtered;
  response.suppressed = report.suppressed;
  response.declined = report.declined;
  response.cache_hits = report.cache_hits;
  response.predictions = report.predictions;
  return response;
}

namespace {

/// write(2) until all of `data` is on the wire (or a real error).
Status WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("write: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// read(2) until `size` bytes arrived. kNotFound on EOF at offset 0
/// (clean close between frames), kIOError on a torn frame or error.
Status ReadAll(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("read: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IOError(StrFormat(
          "connection closed mid-frame (%zu of %zu bytes)", got, size));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(StrFormat(
        "frame payload %zu exceeds the %u-byte limit", payload.size(),
        kMaxFramePayload));
  }
  // One buffered write per frame: header + payload together, so
  // concurrent writers on the same socket (guarded by the caller's
  // mutex) never interleave partial frames.
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU8(static_cast<uint8_t>(type));
  std::string buffer = enc.Release();
  buffer.append(payload);
  return WriteAll(fd, buffer.data(), buffer.size());
}

Result<Frame> ReadFrame(int fd) {
  char header[5];
  RULEKIT_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header)));
  Decoder dec(std::string_view(header, sizeof(header)));
  uint32_t length = dec.U32();
  uint8_t type = dec.U8();
  if (length > kMaxFramePayload) {
    return Status::IOError(StrFormat(
        "frame payload %u exceeds the %u-byte limit", length,
        kMaxFramePayload));
  }
  if (type < static_cast<uint8_t>(FrameType::kClassifyRequest) ||
      type > kMaxFrameType) {
    return Status::IOError(StrFormat("unknown frame type %u", type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(length);
  if (length > 0) {
    Status st = ReadAll(fd, frame.payload.data(), length);
    if (!st.ok()) {
      // EOF inside a frame body is always torn, even at payload offset 0.
      if (st.code() == StatusCode::kNotFound) {
        return Status::IOError("connection closed mid-frame");
      }
      return st;
    }
  }
  return frame;
}

}  // namespace rulekit::serving
