#ifndef RULEKIT_SERVING_SERVER_H_
#define RULEKIT_SERVING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/common/histogram.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/serving/rate_limiter.h"
#include "src/serving/wire.h"

namespace rulekit::serving {

/// RuleServer tuning. The defaults suit tests and small deployments;
/// the benchmark and production paths set everything explicitly.
struct ServerConfig {
  /// TCP port to bind on loopback; 0 = ephemeral (read back via port()).
  uint16_t port = 0;
  /// Connection reader threads. Each live connection occupies one for
  /// its blocking read loop, so this bounds concurrent connections —
  /// connection N+1 waits until an earlier one closes.
  size_t io_threads = 4;
  /// How long the dispatcher holds an eligible single-item request open
  /// for more coalescable arrivals (same tenant, allow_coalesce, no
  /// durability demand) before dispatching the merged batch.
  std::chrono::microseconds coalesce_window{500};
  /// Hard cap on requests merged into one dispatched batch.
  size_t max_coalesce_batch = 64;
  /// Bounded pending-request queue; arrivals beyond it are refused with
  /// kOverloaded (backpressure, not buffering).
  size_t max_pending = 256;
  /// Requests carrying more items than this are kInvalidArgument.
  size_t max_items_per_request = 4096;
  /// Per-client (== per-tenant) token-bucket rate limit; <= 0 disables.
  double rate_limit_per_sec = 0.0;
  double rate_limit_burst = 32.0;
  /// When set, every dispatched batch is recorded as a ServingActivity
  /// under its tenant (admission counters attached as deltas).
  chimera::QualityMonitor* monitor = nullptr;
  /// Writer-mode switch. When set (normally to the same pipeline the
  /// server serves), RuleEditRequest frames are applied through it as
  /// ordinary transactional mutations — journaled ahead of publication,
  /// so a wire edit ships to followers exactly like a local one. When
  /// null (the default, and always on a replica fronting a follower
  /// pipeline), every edit frame is refused with kReadOnly and nothing
  /// is applied. Classify traffic is unaffected either way.
  chimera::ChimeraPipeline* writer = nullptr;
};

/// A point-in-time copy of the server's counters and distributions.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_admitted = 0;
  uint64_t invalid_requests = 0;
  uint64_t rate_limit_rejects = 0;   // kOverloaded: token bucket empty
  uint64_t queue_full_rejects = 0;   // kOverloaded: pending queue full
  uint64_t deadline_sheds = 0;       // kDeadlineExceeded before dispatch
  uint64_t unavailable_rejects = 0;  // kUnavailable during shutdown
  uint64_t batches_dispatched = 0;
  /// Requests that shared their dispatched batch with at least one other
  /// request (i.e. coalescing actually merged them).
  uint64_t coalesced_requests = 0;
  uint64_t edits_applied = 0;           // rule-edit frames applied (writer)
  uint64_t edits_refused_readonly = 0;  // kReadOnly refusals (no writer)
  uint64_t edit_failures = 0;           // writer present but the edit failed
  /// Admission -> response-written latency per request, microseconds.
  LogHistogram::Snapshot latency_us;
  /// Admission -> dispatch wait per request, microseconds.
  LogHistogram::Snapshot queue_wait_us;
  /// Requests per dispatched batch (the coalescing yield).
  LogHistogram::Snapshot batch_size;

  uint64_t overload_rejects() const {
    return rate_limit_rejects + queue_full_rejects;
  }
};

/// The serving front-end: a framed-TCP network face over one
/// ChimeraPipeline (see DESIGN.md "Serving front-end").
///
///   accept thread -> reader tasks (ThreadPool, one per connection)
///     -> admission (rate limit, bounded queue, deadline, validity)
///       -> dispatcher thread (coalesces single-item requests, sheds
///          expired ones, runs pipeline.Classify once per batch)
///         -> response frames written back per connection
///
/// All pipeline execution happens on the dispatcher thread through the
/// same Classify(ClassifyRequest) entry point in-process callers use, so
/// a response's predictions are byte-identical to a direct call with the
/// same items — coalescing changes batching, never results (snapshot
/// isolation pins one serving version per dispatched batch).
///
/// Stop() (and the destructor) is clean: no new connections or requests
/// are admitted (late arrivals get kUnavailable), readers are unblocked,
/// every already-admitted request is dispatched and answered, and only
/// then do the threads join.
class RuleServer {
 public:
  /// The pipeline must outlive the server.
  RuleServer(const chimera::ChimeraPipeline& pipeline, ServerConfig config);
  ~RuleServer();

  RuleServer(const RuleServer&) = delete;
  RuleServer& operator=(const RuleServer&) = delete;

  /// Binds 127.0.0.1:<config.port>, starts the acceptor, reader pool,
  /// and dispatcher. Fails without side effects if the bind/listen does.
  Status Start();

  /// Idempotent clean shutdown (see class comment).
  void Stop();

  /// The bound port (resolves config.port == 0 to the kernel's pick).
  /// Valid after a successful Start().
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ServerStats stats() const;

 private:
  /// One accepted connection. The fd closes when the last reference
  /// drops (reader task and queued responses share ownership), so a
  /// response write can never race a close.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mu;           // one frame at a time per socket
    std::atomic<bool> alive{true}; // cleared on read EOF / write error
  };

  /// An admitted request waiting for the dispatcher.
  struct Pending {
    std::shared_ptr<Connection> conn;
    WireClassifyRequest request;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point admitted;
  };

  void AcceptLoop();
  void ReadLoop(const std::shared_ptr<Connection>& conn);
  void DispatchLoop();
  /// Runs one batch (1..max_coalesce_batch admitted requests, same
  /// tenant) through the pipeline and writes every member's response.
  void DispatchBatch(std::vector<Pending> batch);
  /// Encodes and writes one response frame; tears the connection down
  /// on a write error.
  void Respond(Connection& conn, const WireClassifyResponse& response);
  /// Applies (writer mode) or refuses (read-only) one rule-edit frame
  /// and writes the RuleEditResponse. Runs on the reader thread — the
  /// pipeline's transactional API is internally synchronized.
  void HandleEdit(Connection& conn, WireRuleEditRequest request);
  void RespondEdit(Connection& conn, const WireRuleEditResponse& response);
  /// Respond + per-request latency accounting for an admitted request.
  void RespondAdmitted(const Pending& pending,
                       const WireClassifyResponse& response);
  bool Coalescable(const Pending& pending) const;

  const chimera::ChimeraPipeline& pipeline_;
  const ServerConfig config_;
  RateLimiter limiter_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::thread dispatcher_;
  std::unique_ptr<ThreadPool> readers_;

  std::mutex conns_mu_;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> connections_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool drain_and_exit_ = false;  // set by Stop(); dispatcher drains first

  // Counters (atomics: bumped from reader threads and the dispatcher).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_admitted_{0};
  std::atomic<uint64_t> invalid_requests_{0};
  std::atomic<uint64_t> rate_limit_rejects_{0};
  std::atomic<uint64_t> queue_full_rejects_{0};
  std::atomic<uint64_t> deadline_sheds_{0};
  std::atomic<uint64_t> unavailable_rejects_{0};
  std::atomic<uint64_t> batches_dispatched_{0};
  std::atomic<uint64_t> coalesced_requests_{0};
  std::atomic<uint64_t> edits_applied_{0};
  std::atomic<uint64_t> edits_refused_readonly_{0};
  std::atomic<uint64_t> edit_failures_{0};
  LogHistogram latency_us_;
  LogHistogram queue_wait_us_;
  LogHistogram batch_size_;

  // Dispatcher-thread-only state for monitor delta attribution.
  uint64_t reported_overload_ = 0;
  uint64_t reported_sheds_ = 0;
};

}  // namespace rulekit::serving

#endif  // RULEKIT_SERVING_SERVER_H_
