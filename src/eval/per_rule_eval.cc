#include "src/eval/per_rule_eval.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace rulekit::eval {

namespace {

struct RuleCoverage {
  const rules::Rule* rule;
  std::vector<uint32_t> items;
  size_t samples = 0;
  size_t positives = 0;

  bool Satisfied(size_t target) const { return samples >= target; }
};

}  // namespace

PerRuleEvalReport EvaluatePerRule(
    const rules::RuleSet& rules, const std::vector<data::LabeledItem>& corpus,
    crowd::CrowdSimulator& crowd, const PerRuleEvalConfig& config) {
  PerRuleEvalReport report;
  Rng rng(config.seed);

  const size_t start_questions = crowd.num_tasks();
  const double start_cost = crowd.total_cost();

  // Coverage of every active positive rule.
  std::vector<RuleCoverage> coverages;
  for (const auto& rule : rules.rules()) {
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kAttributeExists) {
      continue;
    }
    RuleCoverage cov;
    cov.rule = &rule;
    for (uint32_t i = 0; i < corpus.size(); ++i) {
      if (rule.Applies(corpus[i].item)) cov.items.push_back(i);
    }
    coverages.push_back(std::move(cov));
  }

  auto ask = [&](uint32_t item_idx, const std::string& type) {
    return crowd.AskYesNo(corpus[item_idx].label == type);
  };

  if (!config.exploit_overlap) {
    // Baseline: every rule draws its own sample; identical questions are
    // re-asked — that is precisely the cost the overlap method removes.
    for (auto& cov : coverages) {
      auto sample_idx = rng.SampleWithoutReplacement(
          cov.items.size(),
          std::min(config.samples_per_rule, cov.items.size()));
      for (size_t si : sample_idx) {
        bool verdict = ask(cov.items[si], cov.rule->target_type());
        ++cov.samples;
        if (verdict) ++cov.positives;
      }
    }
  } else {
    // Group rules by target type; within a group one crowd question serves
    // every covering rule that still needs samples.
    std::unordered_map<std::string, std::vector<size_t>> by_type;
    for (size_t r = 0; r < coverages.size(); ++r) {
      by_type[coverages[r].rule->target_type()].push_back(r);
    }
    for (auto& [type, rule_ids] : by_type) {
      // item -> rules of this type covering it.
      std::unordered_map<uint32_t, std::vector<size_t>> covering;
      for (size_t r : rule_ids) {
        for (uint32_t item : coverages[r].items) {
          covering[item].push_back(r);
        }
      }
      // Lazy greedy by "number of needy rules served": the count only
      // decreases as rules get satisfied, so stale heap keys are upper
      // bounds.
      struct Entry {
        size_t count;
        uint32_t item;
        uint64_t round;
        bool operator<(const Entry& o) const { return count < o.count; }
      };
      auto needy_count = [&](uint32_t item) {
        size_t n = 0;
        for (size_t r : covering[item]) {
          if (!coverages[r].Satisfied(config.samples_per_rule)) ++n;
        }
        return n;
      };
      std::priority_queue<Entry> heap;
      for (const auto& [item, rs] : covering) {
        heap.push({rs.size(), item, 0});
      }
      uint64_t round = 0;
      while (!heap.empty()) {
        Entry top = heap.top();
        heap.pop();
        if (top.round != round) {
          top.count = needy_count(top.item);
          top.round = round;
          if (top.count > 0) heap.push(top);
          continue;
        }
        if (top.count == 0) break;
        bool verdict = ask(top.item, type);
        for (size_t r : covering[top.item]) {
          RuleCoverage& cov = coverages[r];
          if (cov.Satisfied(config.samples_per_rule)) continue;
          ++cov.samples;
          if (verdict) ++cov.positives;
        }
        ++round;
      }
    }
  }

  for (const auto& cov : coverages) {
    report.per_rule[cov.rule->id()] =
        crowd::WilsonEstimate(cov.positives, cov.samples);
    if (cov.samples < config.samples_per_rule) ++report.under_sampled_rules;
  }
  report.crowd_questions = crowd.num_tasks() - start_questions;
  report.crowd_cost = crowd.total_cost() - start_cost;
  return report;
}

SequentialDecision EvaluateRuleUntilResolved(
    const rules::Rule& rule, const std::vector<data::LabeledItem>& corpus,
    crowd::CrowdSimulator& crowd, double precision_bar, size_t max_samples,
    size_t batch, uint64_t seed) {
  SequentialDecision decision;
  const size_t start_questions = crowd.num_tasks();

  std::vector<uint32_t> coverage;
  for (uint32_t i = 0; i < corpus.size(); ++i) {
    if (rule.Applies(corpus[i].item)) coverage.push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(coverage);

  size_t samples = 0, positives = 0;
  for (uint32_t item : coverage) {
    if (samples >= max_samples) break;
    bool verdict =
        crowd.AskYesNo(corpus[item].label == rule.target_type());
    ++samples;
    if (verdict) ++positives;
    // Check the interval at batch boundaries (peeking every sample would
    // inflate the error rate; batching is the cheap mitigation).
    if (samples % batch != 0) continue;
    auto estimate = crowd::WilsonEstimate(positives, samples);
    if (estimate.lower >= precision_bar) {
      decision.verdict = SequentialDecision::Verdict::kAbove;
      decision.estimate = estimate;
      decision.crowd_questions = crowd.num_tasks() - start_questions;
      return decision;
    }
    if (estimate.upper < precision_bar) {
      decision.verdict = SequentialDecision::Verdict::kBelow;
      decision.estimate = estimate;
      decision.crowd_questions = crowd.num_tasks() - start_questions;
      return decision;
    }
  }
  decision.estimate = crowd::WilsonEstimate(positives, samples);
  decision.crowd_questions = crowd.num_tasks() - start_questions;
  return decision;
}

}  // namespace rulekit::eval
