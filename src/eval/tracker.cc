#include "src/eval/tracker.h"

#include <algorithm>

#include "src/engine/executor.h"

namespace rulekit::eval {

void ImpactTracker::RecordBatch(const rules::RuleSet& rules,
                                const std::vector<data::ProductItem>& batch) {
  engine::RuleExecutor executor(rules, {.use_index = true});
  auto result = executor.Execute(batch);
  const auto& all = rules.rules();
  for (const auto& matched : result.matches_per_item) {
    for (size_t rule_idx : matched) {
      ++matches_[rules::RuleId(all[rule_idx].id())];
    }
  }
  items_seen_ += batch.size();
}

void ImpactTracker::MarkEvaluated(const rules::RuleId& rule_id) {
  evaluated_.insert(rule_id);
}

std::vector<ImpactAlert> ImpactTracker::PendingAlerts() const {
  std::vector<ImpactAlert> alerts;
  for (const auto& [id, count] : matches_) {
    if (count >= threshold_ && evaluated_.count(id) == 0) {
      alerts.push_back({id, count});
    }
  }
  std::sort(alerts.begin(), alerts.end(),
            [](const ImpactAlert& a, const ImpactAlert& b) {
              if (a.matches != b.matches) return a.matches > b.matches;
              return a.rule_id < b.rule_id;
            });
  return alerts;
}

size_t ImpactTracker::MatchCount(const rules::RuleId& rule_id) const {
  auto it = matches_.find(rule_id);
  return it == matches_.end() ? 0 : it->second;
}

EvaluationPlan PlanBudgetedEvaluation(const ImpactTracker& tracker,
                                      size_t budget_questions,
                                      size_t samples_per_rule) {
  EvaluationPlan plan;
  size_t remaining = budget_questions;
  for (const auto& alert : tracker.PendingAlerts()) {
    size_t cost = std::min(samples_per_rule, alert.matches);
    if (cost == 0) continue;
    if (cost > remaining) {
      ++plan.rules_deferred;
      continue;
    }
    remaining -= cost;
    plan.estimated_questions += cost;
    plan.to_evaluate.push_back(alert.rule_id);
  }
  return plan;
}

}  // namespace rulekit::eval
