#ifndef RULEKIT_EVAL_PER_RULE_EVAL_H_
#define RULEKIT_EVAL_PER_RULE_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/crowd/crowd.h"
#include "src/crowd/estimator.h"
#include "src/data/product.h"
#include "src/rules/rule_set.h"

namespace rulekit::eval {

/// Configuration of method 2 (per-rule crowd sampling, ref [18]).
struct PerRuleEvalConfig {
  uint64_t seed = 17;
  /// Target number of verdicts per rule.
  size_t samples_per_rule = 20;
  /// Exploit coverage overlap: sample items in the intersection of several
  /// same-type rules first, so one crowd question feeds several rules'
  /// estimates. False = sample each rule independently (the costly
  /// baseline).
  bool exploit_overlap = true;
};

/// Per-rule precision estimate plus the total crowd spend.
struct PerRuleEvalReport {
  std::map<std::string, crowd::PrecisionEstimate> per_rule;
  size_t crowd_questions = 0;
  double crowd_cost = 0.0;
  /// Rules whose coverage on the corpus was too small to reach the target
  /// sample (tail rules again, but this method still gives them whatever
  /// samples exist).
  size_t under_sampled_rules = 0;
};

/// Method 2 (§4): estimate each rule's precision by having the crowd judge
/// a sample of the items the rule touches. With exploit_overlap, items
/// covered by several not-yet-satisfied rules of the same target type are
/// prioritized, reproducing ref [18]'s cost saving.
///
/// `corpus` supplies both the items and the hidden ground truth the
/// simulated crowd consults.
PerRuleEvalReport EvaluatePerRule(const rules::RuleSet& rules,
                                  const std::vector<data::LabeledItem>& corpus,
                                  crowd::CrowdSimulator& crowd,
                                  const PerRuleEvalConfig& config = {});

/// Outcome of sequential single-rule evaluation against a deploy bar.
struct SequentialDecision {
  enum class Verdict { kAbove, kBelow, kUnresolved };
  Verdict verdict = Verdict::kUnresolved;
  crowd::PrecisionEstimate estimate;
  size_t crowd_questions = 0;
};

/// Sequential evaluation of ONE rule: keep sampling its coverage until the
/// Wilson interval clears or misses `precision_bar`, or `max_samples` is
/// spent. This is how a budget-conscious team answers the §5.2 question
/// "is this rule safe to deploy?" without fixing the sample size up front.
SequentialDecision EvaluateRuleUntilResolved(
    const rules::Rule& rule, const std::vector<data::LabeledItem>& corpus,
    crowd::CrowdSimulator& crowd, double precision_bar,
    size_t max_samples = 200, size_t batch = 10, uint64_t seed = 23);

}  // namespace rulekit::eval

#endif  // RULEKIT_EVAL_PER_RULE_EVAL_H_
