#ifndef RULEKIT_EVAL_VALIDATION_SET_H_
#define RULEKIT_EVAL_VALIDATION_SET_H_

#include <string>
#include <vector>

#include "src/crowd/estimator.h"
#include "src/data/product.h"
#include "src/rules/rule_set.h"

namespace rulekit::eval {

/// Per-rule outcome of evaluation against a shared validation set.
struct ValidationRuleResult {
  std::string rule_id;
  std::string target_type;
  size_t touched = 0;  // validation items the rule's condition fires on
  size_t correct = 0;  // ... whose gold label equals the rule's type
  crowd::PrecisionEstimate estimate;
  /// Whether `touched` reached the minimum sample size. "Tail" rules touch
  /// too few items to be evaluable this way (§4's core criticism of the
  /// single-validation-set method).
  bool evaluable = false;
};

/// Aggregate over all rules plus the method's cost.
struct ValidationEvalReport {
  std::vector<ValidationRuleResult> per_rule;
  size_t validation_set_size = 0;
  size_t labeling_cost = 0;  // one gold label per validation item
  size_t evaluable_rules = 0;
  size_t tail_rules = 0;  // rules below the min sample size
};

/// Method 1 (§4, "Rule Quality Evaluation"): estimate every rule's
/// precision from one labeled validation set. Cheap per rule but blind to
/// tail rules.
ValidationEvalReport EvaluateOnValidationSet(
    const rules::RuleSet& rules,
    const std::vector<data::LabeledItem>& validation_set,
    size_t min_sample = 5);

}  // namespace rulekit::eval

#endif  // RULEKIT_EVAL_VALIDATION_SET_H_
