#include "src/eval/module_eval.h"

#include <algorithm>

namespace rulekit::eval {

ModuleEvalReport EvaluateModule(const ml::Classifier& module,
                                const std::vector<data::LabeledItem>& corpus,
                                crowd::CrowdSimulator& crowd,
                                size_t sample_size, uint64_t seed) {
  ModuleEvalReport report;
  const size_t start_questions = crowd.num_tasks();
  const double start_cost = crowd.total_cost();

  // Items the module predicts on, with its top prediction.
  std::vector<std::pair<uint32_t, std::string>> touched;
  for (uint32_t i = 0; i < corpus.size(); ++i) {
    auto scored = module.Predict(corpus[i].item);
    if (scored.empty()) continue;
    touched.emplace_back(i, scored.front().label);
  }
  report.items_touched = touched.size();

  Rng rng(seed);
  auto sample_idx = rng.SampleWithoutReplacement(
      touched.size(), std::min(sample_size, touched.size()));
  size_t positives = 0;
  for (size_t si : sample_idx) {
    const auto& [item_idx, predicted] = touched[si];
    if (crowd.AskYesNo(corpus[item_idx].label == predicted)) ++positives;
  }
  report.estimate = crowd::WilsonEstimate(positives, sample_idx.size());
  report.crowd_questions = crowd.num_tasks() - start_questions;
  report.crowd_cost = crowd.total_cost() - start_cost;
  return report;
}

}  // namespace rulekit::eval
