#ifndef RULEKIT_EVAL_MODULE_EVAL_H_
#define RULEKIT_EVAL_MODULE_EVAL_H_

#include <vector>

#include "src/common/random.h"
#include "src/crowd/crowd.h"
#include "src/crowd/estimator.h"
#include "src/data/product.h"
#include "src/ml/classifier.h"

namespace rulekit::eval {

/// Result of module-level evaluation.
struct ModuleEvalReport {
  crowd::PrecisionEstimate estimate;  // precision of the module as a whole
  size_t items_touched = 0;           // items the module made a prediction for
  size_t crowd_questions = 0;
  double crowd_cost = 0.0;
};

/// Method 3 (§4): give up per-rule estimates and evaluate a whole
/// rule-based module — sample from the items the module touches, ask the
/// crowd whether the module's prediction is right, and report one Wilson
/// estimate. Far cheaper than per-rule evaluation; far coarser.
ModuleEvalReport EvaluateModule(const ml::Classifier& module,
                                const std::vector<data::LabeledItem>& corpus,
                                crowd::CrowdSimulator& crowd,
                                size_t sample_size, uint64_t seed = 19);

}  // namespace rulekit::eval

#endif  // RULEKIT_EVAL_MODULE_EVAL_H_
