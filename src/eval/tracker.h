#ifndef RULEKIT_EVAL_TRACKER_H_
#define RULEKIT_EVAL_TRACKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/data/product.h"
#include "src/rules/ids.h"
#include "src/rules/rule_set.h"

namespace rulekit::eval {

/// A rule that crossed the impact threshold without ever being evaluated.
struct ImpactAlert {
  rules::RuleId rule_id;
  size_t matches = 0;
};

/// Tracks how many live items each rule touches, and alerts when a rule
/// that was never crowd-evaluated becomes impactful (§5.3 "Rule
/// Evaluation": "use the limited crowdsourcing budget to evaluate only the
/// most impactful rules ... if an un-evaluated non-impactful rule becomes
/// impactful, then we alert the analyst").
class ImpactTracker {
 public:
  explicit ImpactTracker(size_t impact_threshold = 100)
      : threshold_(impact_threshold) {}

  /// Counts each active regex rule's matches over the batch.
  void RecordBatch(const rules::RuleSet& rules,
                   const std::vector<data::ProductItem>& batch);

  /// Records that a rule has been evaluated (clears it from alerting).
  void MarkEvaluated(const rules::RuleId& rule_id);
  void MarkEvaluated(std::string_view rule_id) {
    MarkEvaluated(rules::RuleId(rule_id));
  }

  /// Unevaluated rules at or above the impact threshold, most impactful
  /// first.
  std::vector<ImpactAlert> PendingAlerts() const;

  size_t MatchCount(const rules::RuleId& rule_id) const;
  size_t MatchCount(std::string_view rule_id) const {
    return MatchCount(rules::RuleId(rule_id));
  }

  size_t items_seen() const { return items_seen_; }

  bool IsEvaluated(const rules::RuleId& rule_id) const {
    return evaluated_.count(rule_id) > 0;
  }
  bool IsEvaluated(std::string_view rule_id) const {
    return IsEvaluated(rules::RuleId(rule_id));
  }

 private:
  size_t threshold_;
  size_t items_seen_ = 0;
  std::unordered_map<rules::RuleId, size_t, rules::RuleId::Hash> matches_;
  std::unordered_set<rules::RuleId, rules::RuleId::Hash> evaluated_;
};

/// A crowd-budget-constrained evaluation plan (§5.3 "Rule Evaluation":
/// "use the limited crowdsourcing budget to evaluate only the most
/// impactful rules").
struct EvaluationPlan {
  /// Rule ids to evaluate, most impactful first.
  std::vector<rules::RuleId> to_evaluate;
  size_t estimated_questions = 0;
  size_t rules_deferred = 0;  // impactful but out of budget
};

/// Greedily fits the most impactful unevaluated rules into a crowd-question
/// budget (samples_per_rule questions each; a rule with fewer matches than
/// that costs only its match count).
EvaluationPlan PlanBudgetedEvaluation(const ImpactTracker& tracker,
                                      size_t budget_questions,
                                      size_t samples_per_rule);

}  // namespace rulekit::eval

#endif  // RULEKIT_EVAL_TRACKER_H_
