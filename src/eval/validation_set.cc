#include "src/eval/validation_set.h"

namespace rulekit::eval {

ValidationEvalReport EvaluateOnValidationSet(
    const rules::RuleSet& rules,
    const std::vector<data::LabeledItem>& validation_set,
    size_t min_sample) {
  ValidationEvalReport report;
  report.validation_set_size = validation_set.size();
  report.labeling_cost = validation_set.size();

  for (const auto& rule : rules.rules()) {
    if (!rule.is_active()) continue;
    if (rule.kind() != rules::RuleKind::kWhitelist &&
        rule.kind() != rules::RuleKind::kAttributeExists) {
      continue;  // precision of a veto rule is not defined this way
    }
    ValidationRuleResult result;
    result.rule_id = rule.id();
    result.target_type = rule.target_type();
    for (const auto& li : validation_set) {
      if (!rule.Applies(li.item)) continue;
      ++result.touched;
      if (li.label == rule.target_type()) ++result.correct;
    }
    result.estimate = crowd::WilsonEstimate(result.correct, result.touched);
    result.evaluable = result.touched >= min_sample;
    if (result.evaluable) {
      ++report.evaluable_rules;
    } else {
      ++report.tail_rules;
    }
    report.per_rule.push_back(std::move(result));
  }
  return report;
}

}  // namespace rulekit::eval
