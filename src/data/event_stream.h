#ifndef RULEKIT_DATA_EVENT_STREAM_H_
#define RULEKIT_DATA_EVENT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/data/drift_target.h"
#include "src/data/product.h"

namespace rulekit::data {

/// Vocabulary specification of one event type — the SIEM analog of a
/// product TypeSpec, shaped after decoder/ruleset corpora (Wazuh-style):
/// a syslog program tag, signature keyword phrases that detection rules
/// anchor on, and type-flavored filler vocabulary. A log line of the type
/// renders as "<program>: <keyword phrase> <filler>* <generic>*".
struct EventTypeSpec {
  std::string name;     // event type = the classification label
  std::string program;  // syslog program tag ("sshd", "kernel", ...)
  /// Signature phrases: what a decoder's prematch/regex keys on. Every
  /// phrase is exclusive to its type, so one rule per keyword classifies
  /// the undrifted stream perfectly.
  std::vector<std::string> keywords;
  /// Type-flavored non-signature words (rules ignore these; learners
  /// pick them up as soft evidence).
  std::vector<std::string> filler;
  double weight = 1.0;  // relative event frequency multiplier

  /// A drifted message shape: the rendered body uses these tokens instead
  /// of a known keyword phrase. Added by InjectDrift / AddConceptWord.
  struct Variant {
    std::vector<std::string> tokens;
    double share = 0.0;  // probability a generated line uses this variant
  };
  std::vector<Variant> variants;
};

/// Knobs of the synthetic event stream.
struct EventStreamConfig {
  uint64_t seed = 2025;
  /// Total event types. At least the curated set (~12); any excess is
  /// synthesized with generated vocabularies.
  size_t num_event_types = 12;
  /// Zipf skew of event-type frequency (log traffic is heavy-headed:
  /// a few chatty daemons dominate).
  double zipf_skew = 1.05;
  /// Probability of appending a random junk token (hostnames, hex ids).
  double noise_prob = 0.05;
};

/// How InjectDrift mutates the stream.
enum class EventDriftKind {
  /// The drifted type starts emitting lines whose body is a fresh,
  /// never-seen phrase plus a donor type's filler vocabulary: rules
  /// abstain (no signature matches) and a stale learner confidently
  /// mislabels the line as the donor type — the recoverable-by-retrain
  /// drift the self-healing benchmarks inject.
  kVocabulary,
  /// A donor type's signature keyword starts appearing verbatim inside
  /// the drifted type's lines (log forwarding / embedded quoting): the
  /// donor's rule now fires wrongly, so every additional poisoned type
  /// can only lower rule precision on the reference corpus — the
  /// monotone axis the drift property tests ride.
  kBleed,
};

struct EventDriftOptions {
  uint64_t seed = 23;
  EventDriftKind kind = EventDriftKind::kVocabulary;
  /// Probability a generated line of a drifted type uses its drifted
  /// variant instead of a known signature shape.
  double drift_share = 0.5;
};

/// Record of one drifted type, so experiments can report what changed.
struct EventDriftRecord {
  size_t target_spec = 0;   // type that drifted
  size_t donor_spec = 0;    // type whose vocabulary bled in
  std::string fresh_token;  // never-seen word introduced by the drift
};

/// Deterministic synthetic log-line stream: the second workload beside
/// product titles. Each generated LabeledItem carries the rendered log
/// line as its title (plus program/severity attributes) and the event
/// type as its label, so the stream flows through the exact same
/// ClassifyRequest path as catalog items.
///
/// Implements DriftTarget, so the generic DriftInjector eras apply; the
/// richer InjectDrift below drives the seeded, magnitude-ordered drift
/// plans the recovery benchmarks and property tests need.
class EventStreamGenerator : public DriftTarget {
 public:
  explicit EventStreamGenerator(const EventStreamConfig& config = {});

  /// The ~12 hand-curated event types (auth, firewall, web, malware, ...).
  static std::vector<EventTypeSpec> CuratedSpecs();

  const std::vector<EventTypeSpec>& specs() const { return specs_; }

  /// Index into specs() for an event type name, or kNpos.
  size_t SpecIndexOf(std::string_view type_name) const;

  /// One log line of a type drawn from the Zipf frequency distribution.
  LabeledItem Generate();

  /// `n` lines from the frequency distribution.
  std::vector<LabeledItem> GenerateMany(size_t n);

  /// One line of a specific type.
  LabeledItem GenerateOfType(size_t spec_index);

  /// A deterministic, RNG-free enumeration of the stream's message
  /// space: one line per (type, keyword) and one per (type, variant),
  /// in spec order. The fixed corpus drift properties are measured
  /// against — adding a drifted variant appends exactly its lines and
  /// perturbs nothing else.
  std::vector<LabeledItem> ReferenceCorpus() const;

  /// Applies the first `magnitude` entries of the seeded drift plan
  /// derived from `options` (one entry drifts one type; magnitude is
  /// capped at the type count). Calling again with a larger magnitude
  /// applies only the new entries, and two fresh generators given the
  /// same seed/options/magnitude end up with identical variants — the
  /// replay + monotonicity contract the property tests assert.
  std::vector<EventDriftRecord> InjectDrift(const EventDriftOptions& options,
                                            size_t magnitude);

  // ---- DriftTarget -------------------------------------------------------

  size_t num_drift_specs() const override { return specs_.size(); }
  std::string_view drift_spec_name(size_t index) const override {
    return specs_[index].name;
  }
  double drift_spec_weight(size_t index) const override {
    return specs_[index].weight;
  }
  /// Era-style concept drift: the word becomes a new single-token message
  /// shape of the type (a phrasing no deployed rule has seen).
  void AddConceptWord(size_t index, std::string word) override;
  void ScaleWeight(size_t index, double weight) override;
  std::string FreshDriftWord() override;

  static constexpr size_t kNpos = static_cast<size_t>(-1);

 private:
  std::string RenderLine(const EventTypeSpec& spec, Rng& rng);
  LabeledItem MakeItem(size_t spec_index, Rng& rng);
  EventTypeSpec SynthesizeSpec();
  void RebuildSampler();

  EventStreamConfig config_;
  Rng rng_;
  std::vector<EventTypeSpec> specs_;
  std::vector<double> sample_weights_;  // zipf x spec weight
  uint64_t next_event_id_ = 0;
  uint64_t next_word_id_ = 0;
  size_t applied_drift_ = 0;  // drift-plan entries already applied
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_EVENT_STREAM_H_
