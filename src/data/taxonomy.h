#ifndef RULEKIT_DATA_TAXONOMY_H_
#define RULEKIT_DATA_TAXONOMY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"

namespace rulekit::data {

/// Dense identifier of a product type within a Taxonomy.
using TypeId = uint32_t;
inline constexpr TypeId kInvalidTypeId = static_cast<TypeId>(-1);

/// The registry of mutually exclusive product types (paper §2.1: 5,000+
/// types such as "laptop computers", "area rugs", "rings"). Supports the
/// split operation from §4 (Rule Maintenance): splitting "pants" into
/// "work pants" and "jeans" retires the old type and invalidates its rules.
class Taxonomy {
 public:
  /// Adds a type; returns its id, or the existing id if already present.
  TypeId AddType(std::string_view name);

  /// Id for `name`, or kInvalidTypeId.
  TypeId IdOf(std::string_view name) const;

  bool Contains(std::string_view name) const {
    return IdOf(name) != kInvalidTypeId;
  }

  /// Name of an id. Requires a valid id.
  const std::string& NameOf(TypeId id) const { return names_[id]; }

  /// True if the type exists and has not been retired by a split.
  bool IsActive(TypeId id) const { return id < names_.size() && active_[id]; }

  size_t size() const { return names_.size(); }
  size_t num_active() const;

  /// All active type names.
  std::vector<std::string> ActiveTypes() const;

  /// Splits `name` into `parts` (paper example: "pants" -> {"work pants",
  /// "jeans"}): retires `name`, adds the parts, records the lineage. Fails
  /// if `name` is unknown or already retired, or parts is empty.
  Status SplitType(std::string_view name,
                   const std::vector<std::string>& parts);

  /// The replacement types of a retired type (empty if not retired).
  std::vector<std::string> ReplacementsOf(std::string_view name) const;

 private:
  std::vector<std::string> names_;
  std::vector<bool> active_;
  std::unordered_map<std::string, TypeId> index_;
  std::unordered_map<TypeId, std::vector<TypeId>> replacements_;
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_TAXONOMY_H_
