#include "src/data/product.h"

#include <cstdlib>

namespace rulekit::data {

std::optional<std::string_view> ProductItem::GetAttribute(
    std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return std::string_view(v);
  }
  return std::nullopt;
}

void ProductItem::SetAttribute(std::string_view name, std::string_view value) {
  for (auto& [k, v] : attributes) {
    if (k == name) {
      v = std::string(value);
      return;
    }
  }
  attributes.emplace_back(std::string(name), std::string(value));
}

std::optional<double> ProductItem::Price() const {
  auto p = GetAttribute("Price");
  if (!p.has_value()) return std::nullopt;
  std::string s(*p);
  char* end = nullptr;
  double value = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return std::nullopt;
  return value;
}

}  // namespace rulekit::data
