#include "src/data/catalog_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/string_util.h"

namespace rulekit::data {

namespace {

const std::vector<std::string>& GenericBrands() {
  static const auto* kBrands = new std::vector<std::string>{
      "mainstays",    "better homes", "ozark trail", "great value",
      "hyper tough",  "parkview",     "holden",      "northbrook",
      "silverline",   "eastport"};
  return *kBrands;
}

const std::vector<std::string>& Colors() {
  static const auto* kColors = new std::vector<std::string>{
      "black", "white", "red",  "blue",  "green", "ivory",
      "gray",  "brown", "navy", "beige", "teal",  "burgundy"};
  return *kColors;
}

const std::vector<std::string>& Suffixes() {
  static const auto* kSuffixes = new std::vector<std::string>{
      "5x7",        "8x10",     "2 pack",  "3 pack",  "value bundle",
      "size 10",    "size m",   "size l",  "xl",      "standard",
      "deluxe",     "premium",  "classic", "2026 model"};
  return *kSuffixes;
}

}  // namespace

std::vector<TypeSpec> CatalogGenerator::CuratedSpecs() {
  std::vector<TypeSpec> specs;

  // Table 1 types first.
  specs.push_back({"area rugs",
                   {"rug", "rugs"},
                   {"area", "shaw", "oriental", "novelty", "braided", "royal",
                    "casual", "tufted", "contemporary", "floral", "shag",
                    "medallion"},
                   {"wool", "polypropylene", "jute", "microfiber"},
                   {},
                   15, 400});
  specs.push_back({"athletic gloves",
                   {"gloves", "glove"},
                   {"athletic", "impact", "football", "training", "boxing",
                    "golf", "workout", "batting", "weightlifting",
                    "sparring"},
                   {"leather", "synthetic", "neoprene"},
                   {},
                   8, 80});
  specs.push_back({"shorts",
                   {"shorts"},
                   {"boys", "denim", "knit", "cotton blend", "elastic",
                    "loose fit", "classic mesh", "cargo", "carpenter",
                    "athletic fit"},
                   {"cotton", "polyester", "fleece"},
                   {},
                   6, 40});
  specs.push_back({"abrasive wheels & discs",
                   {"wheels", "wheel", "discs", "disc"},
                   {"abrasive", "flap", "grinding", "fiber", "sanding",
                    "zirconia fiber", "cutter", "knot", "twisted knot",
                    "cutoff"},
                   {"aluminum oxide", "silicon carbide", "ceramic"},
                   {"dewalt", "makita", "norton", "3m"},
                   5, 60});

  // Types used throughout the paper's narrative.
  specs.push_back({"motor oil",
                   {"oil", "oils", "lubricant", "lubricants"},
                   {"motor", "engine", "automotive", "car", "truck", "suv",
                    "van", "vehicle", "motorcycle", "pickup", "scooter",
                    "atv", "boat"},
                   {"5w-30", "10w-40", "full synthetic", "high mileage"},
                   {"castrol", "mobil", "pennzoil", "valvoline",
                    "quaker state"},
                   10, 70});
  specs.push_back({"rings",
                   {"ring", "rings", "wedding band", "wedding bands",
                    "trio set"},
                   {"wedding", "diamond", "engagement", "eternity",
                    "solitaire", "sapphire", "promise", "birthstone", "halo",
                    "anniversary"},
                   {"10kt white gold", "sterling silver", "platinaire",
                    "rose gold", "tungsten"},
                   {"always & forever", "keepsake", "miabella"},
                   25, 900});
  specs.push_back({"jeans",
                   {"jeans", "jean"},
                   {"denim", "relaxed fit", "skinny", "bootcut",
                    "straight leg", "slim fit", "carpenter", "distressed",
                    "regular fit", "indigo"},
                   {"cotton", "stretch denim"},
                   {"dickies", "levis", "wrangler", "lee"},
                   12, 90});
  specs.push_back({"laptop bags & cases",
                   {"bag", "bags", "case", "cases", "sleeve"},
                   {"laptop", "notebook", "chromebook", "messenger",
                    "carrying", "protective", "neoprene zip"},
                   {"nylon", "neoprene", "leather", "eva"},
                   {"targus", "case logic", "swissgear"},
                   10, 90});
  specs.push_back({"books",
                   {"book", "novel", "paperback", "hardcover"},
                   {"mystery", "romance", "cook", "children's", "history",
                    "fantasy", "science fiction", "biography"},
                   {},
                   {"penguin", "harpercollins", "random house"},
                   4, 45,
                   /*has_isbn=*/true});
  specs.push_back({"smart phones",
                   {"smartphone", "phone", "phones"},
                   {"smart", "android", "unlocked", "4g lte", "dual sim",
                    "prepaid", "refurbished"},
                   {},
                   {"apple", "samsung", "motorola", "nokia", "lg"},
                   60, 1100});
  specs.push_back({"laptop computers",
                   {"laptop", "laptops", "ultrabook"},
                   {"gaming", "touchscreen", "business", "2-in-1",
                    "convertible", "student"},
                   {},
                   {"apple", "dell", "hp", "lenovo", "asus", "acer"},
                   250, 2400});
  specs.push_back({"computer cables",
                   {"cable", "cables", "cord", "cords"},
                   {"usb", "hdmi", "ethernet", "networking", "vga", "dvi",
                    "sata", "motherboard", "monitor", "printer", "charging",
                    "extension", "mouse"},
                   {"braided", "gold plated"},
                   {"belkin", "amazonbasics", "monoprice"},
                   3, 35});
  specs.push_back({"handbags",
                   {"handbag", "handbags", "satchel", "purse", "tote",
                    "clutch", "hobo bag"},
                   {"crossbody", "shoulder", "quilted", "woven", "studded",
                    "convertible"},
                   {"leather", "faux leather", "canvas"},
                   {"michael kors", "coach", "nine west"},
                   20, 350});
  specs.push_back({"dining chairs",
                   {"chair", "chairs"},
                   {"dining", "upholstered", "ladder back", "parsons",
                    "side", "wingback", "slat back"},
                   {"oak", "walnut", "metal", "velvet"},
                   {},
                   40, 320});
  specs.push_back({"holiday decorations",
                   {"christmas tree", "christmas trees", "garland",
                    "wreath"},
                   {"pre-lit", "artificial", "spruce", "fir", "pine",
                    "flocked"},
                   {},
                   {},
                   15, 300,
                   /*has_isbn=*/false,
                   /*weight=*/0.12});  // deliberate tail type (§4 "tail rules")
  specs.push_back({"table lamps",
                   {"lamp", "lamps"},
                   {"table", "desk", "bedside", "torchiere", "accent",
                    "banker's"},
                   {"brushed nickel", "ceramic", "glass"},
                   {},
                   12, 150});
  specs.push_back({"dog food",
                   {"dog food", "puppy food", "kibble"},
                   {"dry", "grain free", "adult", "senior", "small breed",
                    "high protein"},
                   {"chicken", "beef", "salmon"},
                   {"pedigree", "purina", "iams", "blue buffalo"},
                   10, 70});
  specs.push_back({"bath towels",
                   {"towel", "towels", "washcloth"},
                   {"bath", "beach", "hand", "quick dry", "oversized"},
                   {"egyptian cotton", "microfiber", "bamboo"},
                   {},
                   5, 60});
  specs.push_back({"coffee makers",
                   {"coffee maker", "coffee makers", "espresso machine"},
                   {"single serve", "12-cup", "programmable", "drip",
                    "cold brew", "thermal"},
                   {"stainless steel"},
                   {"mr. coffee", "keurig", "hamilton beach", "ninja"},
                   20, 250});
  specs.push_back({"headphones",
                   {"headphones", "headphone", "earbuds", "headset"},
                   {"wireless", "bluetooth", "noise cancelling", "over-ear",
                    "in-ear", "gaming"},
                   {},
                   {"sony", "jbl", "beats", "skullcandy"},
                   10, 350});
  specs.push_back({"office desks",
                   {"desk", "desks"},
                   {"computer", "writing", "standing", "l-shaped", "corner",
                    "executive"},
                   {"oak", "glass", "steel"},
                   {},
                   60, 600});
  specs.push_back({"wall art",
                   {"canvas print", "wall art", "poster", "framed print"},
                   {"abstract", "vintage", "botanical", "typography",
                    "panoramic"},
                   {},
                   {},
                   8, 180});
  specs.push_back({"baby strollers",
                   {"stroller", "strollers"},
                   {"jogging", "umbrella", "double", "travel system",
                    "lightweight", "reversible"},
                   {},
                   {"graco", "chicco", "evenflo", "baby trend"},
                   50, 500});
  specs.push_back({"power drills",
                   {"drill", "drills", "drill driver"},
                   {"cordless", "hammer", "impact", "brushless",
                    "right angle", "20v max"},
                   {},
                   {"dewalt", "makita", "ryobi", "black+decker"},
                   30, 300});
  specs.push_back({"winter coats",
                   {"coat", "coats", "parka"},
                   {"winter", "puffer", "down", "hooded", "quilted",
                    "insulated"},
                   {"polyester", "wool blend", "faux fur"},
                   {},
                   25, 250});
  specs.push_back({"vacuum cleaners",
                   {"vacuum", "vacuums", "vacuum cleaner"},
                   {"robot", "upright", "canister", "cordless", "bagless",
                    "stick"},
                   {},
                   {"dyson", "shark", "bissell", "hoover", "eureka"},
                   40, 600});
  specs.push_back({"bed sheets",
                   {"sheet set", "sheets", "bed sheets"},
                   {"queen", "king", "twin", "deep pocket",
                    "1800 thread count", "sateen"},
                   {"microfiber", "egyptian cotton", "bamboo"},
                   {},
                   12, 120});
  specs.push_back({"wrist watches",
                   {"watch", "watches", "wristwatch"},
                   {"chronograph", "digital", "analog", "dive", "fitness",
                    "dress"},
                   {"stainless steel", "silicone", "leather"},
                   {"casio", "timex", "fossil", "armitron"},
                   15, 400});

  return specs;
}

CatalogGenerator::CatalogGenerator(const GeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  specs_ = CuratedSpecs();
  while (specs_.size() < config_.num_types) {
    specs_.push_back(SynthesizeSpec());
  }
  if (config_.num_types > 0 && specs_.size() > config_.num_types) {
    specs_.resize(config_.num_types);
  }
  for (size_t i = 0; i < specs_.size(); ++i) {
    taxonomy_.AddType(specs_[i].name);
    spec_index_[specs_[i].name] = i;
  }
  RebuildSampler();
}

void CatalogGenerator::RebuildSampler() {
  sample_weights_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    double zipf = 1.0 / std::pow(static_cast<double>(i + 1),
                                 config_.zipf_skew);
    sample_weights_[i] = zipf * specs_[i].weight;
  }
}

size_t CatalogGenerator::SpecIndexOf(std::string_view type_name) const {
  auto it = spec_index_.find(std::string(type_name));
  return it == spec_index_.end() ? kNpos : it->second;
}

std::string CatalogGenerator::FreshWord() {
  static const char* kOnsets[] = {"b",  "br", "d",  "dr", "f",  "gl", "k",
                                  "kr", "l",  "m",  "n",  "p",  "pl", "r",
                                  "s",  "st", "t",  "tr", "v",  "z"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "or"};
  static const char* kCodas[] = {"b", "d", "g", "k", "l", "m", "n", "p",
                                 "r", "s", "t", "x"};
  std::string word;
  int syllables = 2 + static_cast<int>(rng_.Uniform(2));
  for (int s = 0; s < syllables; ++s) {
    word += kOnsets[rng_.Uniform(std::size(kOnsets))];
    word += kVowels[rng_.Uniform(std::size(kVowels))];
  }
  word += kCodas[rng_.Uniform(std::size(kCodas))];
  // Uniqueness: suffix with a counter; collisions with English vocabulary
  // are implausible and harmless anyway.
  word += StrFormat("%llu", static_cast<unsigned long long>(next_word_id_++));
  return word;
}

TypeSpec CatalogGenerator::SynthesizeSpec() {
  TypeSpec spec;
  std::string noun = FreshWord();
  spec.name = FreshWord() + " " + noun + "s";
  spec.head_nouns = {noun, noun + "s"};
  size_t num_qualifiers = 5 + rng_.Uniform(8);
  for (size_t i = 0; i < num_qualifiers; ++i) {
    spec.qualifiers.push_back(FreshWord());
  }
  for (size_t i = 0; i < 3; ++i) spec.materials.push_back(FreshWord());
  spec.min_price = 5.0 + rng_.NextDouble() * 50.0;
  spec.max_price = spec.min_price * (2.0 + rng_.NextDouble() * 8.0);
  return spec;
}

std::string CatalogGenerator::MakeTitle(const TypeSpec& spec, Rng& rng,
                                        const VendorProfile* vendor,
                                        std::string* title_brand) {
  std::vector<std::string> parts;

  const std::vector<std::string>& brands =
      spec.brands.empty() ? GenericBrands() : spec.brands;
  if (rng.Bernoulli(0.65)) {
    std::string brand = brands[rng.Uniform(brands.size())];
    parts.push_back(brand);
    if (title_brand != nullptr) *title_brand = brand;
  }

  // 1-2 qualifiers.
  if (!spec.qualifiers.empty()) {
    size_t qi = rng.Uniform(spec.qualifiers.size());
    parts.push_back(spec.qualifiers[qi]);
    if (spec.qualifiers.size() > 1 && rng.Bernoulli(0.3)) {
      size_t qj = rng.Uniform(spec.qualifiers.size());
      if (qj != qi) parts.push_back(spec.qualifiers[qj]);
    }
  }

  if (!spec.materials.empty() && rng.Bernoulli(0.4)) {
    parts.push_back(spec.materials[rng.Uniform(spec.materials.size())]);
  }

  // Head noun (sometimes omitted; sometimes vendor-aliased).
  if (!rng.Bernoulli(config_.omit_noun_prob)) {
    std::string noun = spec.head_nouns[rng.Uniform(spec.head_nouns.size())];
    if (vendor != nullptr && rng.Bernoulli(vendor->alias_prob)) {
      auto it = vendor->noun_aliases.find(spec.name);
      if (it != vendor->noun_aliases.end() && !it->second.empty()) {
        noun = it->second[rng.Uniform(it->second.size())];
      }
    }
    parts.push_back(noun);
  }

  if (rng.Bernoulli(0.5)) {
    parts.push_back(Suffixes()[rng.Uniform(Suffixes().size())]);
  }
  if (rng.Bernoulli(0.35)) {
    parts.push_back(Colors()[rng.Uniform(Colors().size())]);
  }

  // Cross-type confuser phrase.
  if (specs_.size() > 1 && rng.Bernoulli(config_.confuser_prob)) {
    const TypeSpec& other = specs_[rng.Uniform(specs_.size())];
    if (other.name != spec.name && !other.head_nouns.empty()) {
      parts.push_back("for " +
                      other.head_nouns[rng.Uniform(other.head_nouns.size())]);
    }
  }

  std::string title = Join(parts, " ");

  // Typo: transpose two adjacent characters.
  if (title.size() > 3 && rng.Bernoulli(config_.typo_prob)) {
    size_t i = 1 + rng.Uniform(title.size() - 2);
    if (title[i] != ' ' && title[i + 1] != ' ') {
      std::swap(title[i], title[i + 1]);
    }
  }
  return title;
}

LabeledItem CatalogGenerator::MakeItem(size_t spec_index, Rng& rng,
                                       const VendorProfile* vendor) {
  const TypeSpec& spec = specs_[spec_index];
  LabeledItem out;
  out.label = spec.name;
  out.item.id = StrFormat("item-%llu",
                          static_cast<unsigned long long>(next_item_id_++));
  std::string title_brand;
  out.item.title = MakeTitle(spec, rng, vendor, &title_brand);

  double attr_keep = vendor == nullptr ? 1.0 : 1.0 - vendor->attr_dropout;

  double price = spec.min_price +
                 rng.NextDouble() * (spec.max_price - spec.min_price);
  out.item.SetAttribute("Price", StrFormat("%.2f", price));

  // The Brand attribute, when present, agrees with the title's brand (a
  // title-less brand draws randomly).
  const std::vector<std::string>& brands =
      spec.brands.empty() ? GenericBrands() : spec.brands;
  if (rng.Bernoulli(0.8 * attr_keep)) {
    out.item.SetAttribute("Brand",
                          title_brand.empty()
                              ? brands[rng.Uniform(brands.size())]
                              : title_brand);
  }
  if (rng.Bernoulli(0.45 * attr_keep)) {
    out.item.SetAttribute("Color", Colors()[rng.Uniform(Colors().size())]);
  }
  if (rng.Bernoulli(0.3 * attr_keep)) {
    out.item.SetAttribute(
        "Item Weight",
        StrFormat("%.1f lb", 0.2 + rng.NextDouble() * 40.0));
  }
  if (spec.has_isbn && rng.Bernoulli(0.95)) {
    std::string isbn = "978";
    for (int i = 0; i < 10; ++i) {
      isbn += static_cast<char>('0' + rng.Uniform(10));
    }
    out.item.SetAttribute("ISBN", isbn);
  }
  if (rng.Bernoulli(0.7 * attr_keep)) {
    std::string desc = spec.qualifiers.empty()
                           ? spec.name
                           : spec.qualifiers[rng.Uniform(
                                 spec.qualifiers.size())] +
                                 " " + spec.name;
    out.item.SetAttribute("Description",
                          "quality " + desc + " for everyday use");
  }
  return out;
}

LabeledItem CatalogGenerator::Generate() {
  size_t spec_index = rng_.WeightedIndex(sample_weights_);
  return MakeItem(spec_index, rng_, nullptr);
}

std::vector<LabeledItem> CatalogGenerator::GenerateMany(size_t n) {
  std::vector<LabeledItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Generate());
  return out;
}

LabeledItem CatalogGenerator::GenerateOfType(size_t spec_index) {
  assert(spec_index < specs_.size());
  return MakeItem(spec_index, rng_, nullptr);
}

std::vector<LabeledItem> CatalogGenerator::GenerateManyOfType(
    size_t spec_index, size_t n) {
  std::vector<LabeledItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(GenerateOfType(spec_index));
  return out;
}

std::vector<LabeledItem> CatalogGenerator::GenerateVendorBatch(
    size_t n, const VendorProfile& vendor) {
  std::vector<LabeledItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    size_t spec_index = rng_.WeightedIndex(sample_weights_);
    out.push_back(MakeItem(spec_index, rng_, &vendor));
  }
  return out;
}

VendorProfile CatalogGenerator::MakeOddVendor(size_t num_renamed_types) {
  VendorProfile vendor;
  vendor.name = "vendor-" + FreshWord();
  vendor.alias_prob = 0.9;
  vendor.attr_dropout = 0.5;
  num_renamed_types = std::min(num_renamed_types, specs_.size());
  auto picks = rng_.SampleWithoutReplacement(specs_.size(),
                                             num_renamed_types);
  for (size_t idx : picks) {
    vendor.noun_aliases[specs_[idx].name] = {FreshWord(), FreshWord()};
  }
  return vendor;
}

void CatalogGenerator::AddQualifier(size_t spec_index,
                                    std::string qualifier) {
  assert(spec_index < specs_.size());
  specs_[spec_index].qualifiers.push_back(std::move(qualifier));
}

void CatalogGenerator::AddHeadNoun(size_t spec_index, std::string noun) {
  assert(spec_index < specs_.size());
  specs_[spec_index].head_nouns.push_back(std::move(noun));
}

void CatalogGenerator::SetTypeWeight(size_t spec_index, double weight) {
  assert(spec_index < specs_.size());
  specs_[spec_index].weight = weight;
  RebuildSampler();
}

}  // namespace rulekit::data
