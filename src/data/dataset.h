#ifndef RULEKIT_DATA_DATASET_H_
#define RULEKIT_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/product.h"

namespace rulekit::data {

/// Serializes labeled items to a TSV file:
///   label \t id \t title \t k1=v1 \x1e k2=v2 ...
/// Tabs/newlines/backslashes inside fields are backslash-escaped; attribute
/// pairs are separated by the ASCII record separator 0x1e.
Status SaveTsv(const std::string& path, const std::vector<LabeledItem>& items);

/// Loads a file written by SaveTsv.
Result<std::vector<LabeledItem>> LoadTsv(const std::string& path);

/// Serializes items as JSON Lines, one product per line, in the shape of
/// the paper's Figure 1 ({"Item ID": ..., "Title": ..., ...} plus a
/// "_type" field for the label).
Status SaveJsonl(const std::string& path,
                 const std::vector<LabeledItem>& items);

/// Loads a file written by SaveJsonl (flat JSON objects with string
/// values). Unknown keys become attributes; a missing "_type" yields an
/// empty label.
Result<std::vector<LabeledItem>> LoadJsonl(const std::string& path);

/// Splits items into train/test by a deterministic hash of the item id.
/// `test_fraction` of items land in the second return component.
std::pair<std::vector<LabeledItem>, std::vector<LabeledItem>> SplitByHash(
    const std::vector<LabeledItem>& items, double test_fraction);

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_DATASET_H_
