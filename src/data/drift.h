#ifndef RULEKIT_DATA_DRIFT_H_
#define RULEKIT_DATA_DRIFT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/data/drift_target.h"

namespace rulekit::data {

/// Knobs of the drift process (paper §2.2/§3.2: never-ending data whose
/// type vocabulary and distribution both change over time).
struct DriftConfig {
  uint64_t seed = 7;
  /// Number of types that gain a brand-new qualifier word per era
  /// (concept drift: "new types of computer cables keep appearing").
  size_t concept_drift_types_per_era = 3;
  /// Number of types whose popularity is rescaled per era (distribution
  /// drift: seasonal/market shifts).
  size_t reweighted_types_per_era = 5;
  /// Multiplier range for reweighting (sampled log-uniformly).
  double min_weight_factor = 0.2;
  double max_weight_factor = 5.0;
};

/// Record of one era's mutations, so experiments can report exactly what
/// drifted.
struct DriftEvent {
  size_t era = 0;
  std::vector<std::pair<std::string, std::string>> new_qualifiers;  // type, word
  std::vector<std::pair<std::string, double>> reweighted;           // type, factor
};

/// Applies concept drift and distribution drift to a DriftTarget (a
/// CatalogGenerator or EventStreamGenerator) in discrete "eras". Items
/// generated after AdvanceEra() reflect the new vocabulary and
/// popularity, which is what degrades deployed rules and learned models
/// in the experiments.
class DriftInjector {
 public:
  DriftInjector(DriftTarget& target, const DriftConfig& config);

  /// Mutates the target and returns a record of what changed.
  DriftEvent AdvanceEra();

  size_t era() const { return era_; }
  const std::vector<DriftEvent>& history() const { return history_; }

 private:
  DriftTarget& target_;
  DriftConfig config_;
  Rng rng_;
  size_t era_ = 0;
  std::vector<DriftEvent> history_;
  std::vector<double> current_weights_;
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_DRIFT_H_
