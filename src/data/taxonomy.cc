#include "src/data/taxonomy.h"

#include <algorithm>

namespace rulekit::data {

TypeId Taxonomy::AddType(std::string_view name) {
  std::string key(name);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TypeId id = static_cast<TypeId>(names_.size());
  names_.push_back(key);
  active_.push_back(true);
  index_.emplace(std::move(key), id);
  return id;
}

TypeId Taxonomy::IdOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidTypeId : it->second;
}

size_t Taxonomy::num_active() const {
  return static_cast<size_t>(
      std::count(active_.begin(), active_.end(), true));
}

std::vector<std::string> Taxonomy::ActiveTypes() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (active_[i]) out.push_back(names_[i]);
  }
  return out;
}

Status Taxonomy::SplitType(std::string_view name,
                           const std::vector<std::string>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("split requires at least one part");
  }
  TypeId id = IdOf(name);
  if (id == kInvalidTypeId) {
    return Status::NotFound("unknown type: " + std::string(name));
  }
  if (!active_[id]) {
    return Status::FailedPrecondition("type already retired: " +
                                      std::string(name));
  }
  active_[id] = false;
  std::vector<TypeId>& repl = replacements_[id];
  for (const auto& part : parts) {
    repl.push_back(AddType(part));
  }
  return Status::OK();
}

std::vector<std::string> Taxonomy::ReplacementsOf(
    std::string_view name) const {
  TypeId id = IdOf(name);
  std::vector<std::string> out;
  if (id == kInvalidTypeId) return out;
  auto it = replacements_.find(id);
  if (it == replacements_.end()) return out;
  for (TypeId r : it->second) out.push_back(names_[r]);
  return out;
}

}  // namespace rulekit::data
