#ifndef RULEKIT_DATA_CATALOG_GENERATOR_H_
#define RULEKIT_DATA_CATALOG_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/data/drift_target.h"
#include "src/data/product.h"
#include "src/data/taxonomy.h"

namespace rulekit::data {

/// Vocabulary specification of one product type. Titles of the type are
/// assembled as "[brand] [qualifier]+ [material] [head noun] [suffix]";
/// `qualifiers` doubles as the ground-truth synonym set that the §5.1
/// synonym-finder experiments try to rediscover.
struct TypeSpec {
  std::string name;
  std::vector<std::string> head_nouns;   // singular/plural/alias forms
  std::vector<std::string> qualifiers;   // discoverable "synonyms"
  std::vector<std::string> materials;
  std::vector<std::string> brands;       // empty -> generic brand pool
  double min_price = 5.0;
  double max_price = 100.0;
  bool has_isbn = false;    // books carry an ISBN attribute
  double weight = 1.0;      // relative popularity multiplier
};

/// Knobs of the synthetic catalog. The generator substitutes for the
/// paper's Walmart product feed (see DESIGN.md): large-scale, noisy,
/// skewed across types, arriving in vendor batches, subject to drift.
struct GeneratorConfig {
  uint64_t seed = 42;
  /// Total number of product types. At least the curated set (~28); any
  /// excess is synthesized with generated vocabularies.
  size_t num_types = 40;
  /// Zipf skew of type popularity (larger = heavier head).
  double zipf_skew = 1.05;
  /// Probability of a character transposition typo somewhere in the title.
  double typo_prob = 0.03;
  /// Probability that the title omits the head noun (hard items that only
  /// attributes/brands can classify).
  double omit_noun_prob = 0.05;
  /// Probability of appending a cross-type confuser phrase
  /// ("... for laptop").
  double confuser_prob = 0.05;
};

/// A marketplace vendor with its own vocabulary habits. An "odd" vendor
/// that renames head nouns models the §2.2 scale-down scenario: a batch
/// whose items the deployed rules suddenly cannot classify.
struct VendorProfile {
  std::string name;
  /// Probability that the head noun is replaced by a vendor-specific alias.
  double alias_prob = 0.0;
  /// type name -> alias nouns used by this vendor.
  std::unordered_map<std::string, std::vector<std::string>> noun_aliases;
  /// Probability that each non-required attribute is dropped.
  double attr_dropout = 0.0;
};

/// Deterministic synthetic product catalog. Implements DriftTarget so the
/// drift models in data/drift.h can mutate its vocabulary and popularity.
class CatalogGenerator : public DriftTarget {
 public:
  explicit CatalogGenerator(const GeneratorConfig& config);

  /// The ~28 hand-curated type specs (Table 1's four types included).
  static std::vector<TypeSpec> CuratedSpecs();

  const Taxonomy& taxonomy() const { return taxonomy_; }
  const std::vector<TypeSpec>& specs() const { return specs_; }

  /// Index into specs() for a type name, or npos.
  size_t SpecIndexOf(std::string_view type_name) const;

  /// One item of a type drawn from the Zipf popularity distribution.
  LabeledItem Generate();

  /// `n` items from the popularity distribution.
  std::vector<LabeledItem> GenerateMany(size_t n);

  /// One item of a specific type.
  LabeledItem GenerateOfType(size_t spec_index);

  /// `n` items of a specific type.
  std::vector<LabeledItem> GenerateManyOfType(size_t spec_index, size_t n);

  /// A batch from a vendor, applying the vendor's vocabulary quirks.
  std::vector<LabeledItem> GenerateVendorBatch(size_t n,
                                               const VendorProfile& vendor);

  /// A vendor that renames the head nouns of `num_renamed_types` types to
  /// fresh made-up words — the "new vendor, new vocabulary" stressor.
  VendorProfile MakeOddVendor(size_t num_renamed_types);

  // ---- drift hooks (used by data/drift.h) --------------------------------

  /// Introduces a new qualifier word into a type's vocabulary (concept
  /// drift: a new subtype appears; paper example "computer cables").
  void AddQualifier(size_t spec_index, std::string qualifier);

  /// Introduces a new head noun into a type's vocabulary (stronger concept
  /// drift: a new kind of product joins the type, e.g. "dongle" joining
  /// "computer cables" — noun-anchored rules miss these items).
  void AddHeadNoun(size_t spec_index, std::string noun);

  /// Rescales a type's popularity (distribution drift: seasonal shifts).
  void SetTypeWeight(size_t spec_index, double weight);

  /// A fresh made-up word not used anywhere in the catalog vocabulary.
  std::string FreshWord();

  // ---- DriftTarget -------------------------------------------------------

  size_t num_drift_specs() const override { return specs_.size(); }
  std::string_view drift_spec_name(size_t index) const override {
    return specs_[index].name;
  }
  double drift_spec_weight(size_t index) const override {
    return specs_[index].weight;
  }
  /// Concept drift maps to a new qualifier (the paper's "new types of
  /// computer cables keep appearing").
  void AddConceptWord(size_t index, std::string word) override {
    AddQualifier(index, std::move(word));
  }
  void ScaleWeight(size_t index, double weight) override {
    SetTypeWeight(index, weight);
  }
  std::string FreshDriftWord() override { return FreshWord(); }

  static constexpr size_t kNpos = static_cast<size_t>(-1);

 private:
  std::string MakeTitle(const TypeSpec& spec, Rng& rng,
                        const VendorProfile* vendor,
                        std::string* title_brand);
  LabeledItem MakeItem(size_t spec_index, Rng& rng,
                       const VendorProfile* vendor);
  TypeSpec SynthesizeSpec();
  void RebuildSampler();

  GeneratorConfig config_;
  Rng rng_;
  Taxonomy taxonomy_;
  std::vector<TypeSpec> specs_;
  std::vector<double> sample_weights_;  // zipf x spec weight
  std::unordered_map<std::string, size_t> spec_index_;
  uint64_t next_item_id_ = 0;
  uint64_t next_word_id_ = 0;
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_CATALOG_GENERATOR_H_
