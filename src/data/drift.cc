#include "src/data/drift.h"

#include <cmath>

namespace rulekit::data {

DriftInjector::DriftInjector(CatalogGenerator& generator,
                             const DriftConfig& config)
    : generator_(generator), config_(config), rng_(config.seed) {
  current_weights_.assign(generator_.specs().size(), 1.0);
  for (size_t i = 0; i < generator_.specs().size(); ++i) {
    current_weights_[i] = generator_.specs()[i].weight;
  }
}

DriftEvent DriftInjector::AdvanceEra() {
  DriftEvent event;
  event.era = ++era_;
  const size_t num_specs = generator_.specs().size();

  // Concept drift: new qualifier words enter some types' vocabularies.
  auto drifting = rng_.SampleWithoutReplacement(
      num_specs, config_.concept_drift_types_per_era);
  for (size_t idx : drifting) {
    std::string word = generator_.FreshWord();
    generator_.AddQualifier(idx, word);
    event.new_qualifiers.emplace_back(generator_.specs()[idx].name, word);
  }

  // Distribution drift: rescale some types' popularity.
  auto reweighted = rng_.SampleWithoutReplacement(
      num_specs, config_.reweighted_types_per_era);
  for (size_t idx : reweighted) {
    double lo = std::log(config_.min_weight_factor);
    double hi = std::log(config_.max_weight_factor);
    double factor = std::exp(lo + rng_.NextDouble() * (hi - lo));
    current_weights_[idx] *= factor;
    generator_.SetTypeWeight(idx, current_weights_[idx]);
    event.reweighted.emplace_back(generator_.specs()[idx].name, factor);
  }

  history_.push_back(event);
  return event;
}

}  // namespace rulekit::data
