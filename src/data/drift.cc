#include "src/data/drift.h"

#include <cmath>

namespace rulekit::data {

DriftInjector::DriftInjector(DriftTarget& target, const DriftConfig& config)
    : target_(target), config_(config), rng_(config.seed) {
  current_weights_.assign(target_.num_drift_specs(), 1.0);
  for (size_t i = 0; i < target_.num_drift_specs(); ++i) {
    current_weights_[i] = target_.drift_spec_weight(i);
  }
}

DriftEvent DriftInjector::AdvanceEra() {
  DriftEvent event;
  event.era = ++era_;
  const size_t num_specs = target_.num_drift_specs();

  // Concept drift: new vocabulary words enter some types.
  auto drifting = rng_.SampleWithoutReplacement(
      num_specs, config_.concept_drift_types_per_era);
  for (size_t idx : drifting) {
    std::string word = target_.FreshDriftWord();
    target_.AddConceptWord(idx, word);
    event.new_qualifiers.emplace_back(std::string(target_.drift_spec_name(idx)),
                                      word);
  }

  // Distribution drift: rescale some types' popularity.
  auto reweighted = rng_.SampleWithoutReplacement(
      num_specs, config_.reweighted_types_per_era);
  for (size_t idx : reweighted) {
    double lo = std::log(config_.min_weight_factor);
    double hi = std::log(config_.max_weight_factor);
    double factor = std::exp(lo + rng_.NextDouble() * (hi - lo));
    current_weights_[idx] *= factor;
    target_.ScaleWeight(idx, current_weights_[idx]);
    event.reweighted.emplace_back(std::string(target_.drift_spec_name(idx)),
                                  factor);
  }

  history_.push_back(event);
  return event;
}

}  // namespace rulekit::data
