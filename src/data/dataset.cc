#include "src/data/dataset.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "src/common/string_util.h"

namespace rulekit::data {

namespace {

constexpr char kAttrSep = '\x1e';

std::string EscapeField(std::string_view s) {
  // EscapeControl handles backslash/tab/newline; kAttrSep never occurs in
  // generated text and is rejected on save if it does.
  return EscapeControl(s);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Status SaveTsv(const std::string& path,
               const std::vector<LabeledItem>& items) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& li : items) {
    for (std::string_view field : {std::string_view(li.label),
                                   std::string_view(li.item.id),
                                   std::string_view(li.item.title)}) {
      if (field.find(kAttrSep) != std::string_view::npos) {
        return Status::InvalidArgument(
            "field contains the attribute separator byte 0x1e");
      }
    }
    out << EscapeField(li.label) << '\t' << EscapeField(li.item.id) << '\t'
        << EscapeField(li.item.title) << '\t';
    bool first = true;
    for (const auto& [k, v] : li.item.attributes) {
      if (k.find(kAttrSep) != std::string::npos ||
          v.find(kAttrSep) != std::string::npos ||
          k.find('=') != std::string::npos) {
        return Status::InvalidArgument(
            "attribute contains a reserved separator character");
      }
      if (!first) out << kAttrSep;
      first = false;
      out << EscapeField(k) << '=' << EscapeField(v);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<LabeledItem>> LoadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<LabeledItem> items;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 4 tab-separated fields, got %zu",
                    path.c_str(), line_no, fields.size()));
    }
    LabeledItem li;
    li.label = UnescapeControl(fields[0]);
    li.item.id = UnescapeControl(fields[1]);
    li.item.title = UnescapeControl(fields[2]);
    if (!fields[3].empty()) {
      for (const auto& pair : Split(fields[3], kAttrSep)) {
        size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument(
              StrFormat("%s:%zu: malformed attribute pair", path.c_str(),
                        line_no));
        }
        li.item.attributes.emplace_back(
            UnescapeControl(pair.substr(0, eq)),
            UnescapeControl(pair.substr(eq + 1)));
      }
    }
    items.push_back(std::move(li));
  }
  return items;
}

Status SaveJsonl(const std::string& path,
                 const std::vector<LabeledItem>& items) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  for (const auto& li : items) {
    out << "{\"Item ID\": \"" << JsonEscape(li.item.id) << "\", \"Title\": \""
        << JsonEscape(li.item.title) << "\"";
    for (const auto& [k, v] : li.item.attributes) {
      out << ", \"" << JsonEscape(k) << "\": \"" << JsonEscape(v) << "\"";
    }
    out << ", \"_type\": \"" << JsonEscape(li.label) << "\"}\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

namespace {

// Minimal parser for one flat JSON object with string keys and string
// values — exactly the shape SaveJsonl emits.
Status ParseJsonObject(
    std::string_view line, size_t line_no, const std::string& path,
    std::vector<std::pair<std::string, std::string>>* pairs) {
  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument(
        StrFormat("%s:%zu: %s", path.c_str(), line_no, msg.c_str()));
  };
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* out) -> Status {
    skip_ws();
    if (i >= line.size() || line[i] != '"') return err("expected '\"'");
    ++i;
    out->clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (i >= line.size()) return err("dangling escape");
      char e = line[i++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (i + 4 > line.size()) return err("truncated \\u escape");
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            char h = line[i++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return err("bad \\u escape");
          }
          if (value > 0x7f) return err("non-ASCII \\u escape unsupported");
          *out += static_cast<char>(value);
          break;
        }
        default:
          return err("unknown escape");
      }
    }
    if (i >= line.size()) return err("unterminated string");
    ++i;  // closing quote
    return Status::OK();
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return err("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') return Status::OK();
  while (true) {
    std::string key, value;
    RULEKIT_RETURN_IF_ERROR(parse_string(&key));
    skip_ws();
    if (i >= line.size() || line[i] != ':') return err("expected ':'");
    ++i;
    RULEKIT_RETURN_IF_ERROR(parse_string(&value));
    pairs->emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return Status::OK();
    return err("expected ',' or '}'");
  }
}

}  // namespace

Result<std::vector<LabeledItem>> LoadJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::vector<LabeledItem> items;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::pair<std::string, std::string>> pairs;
    RULEKIT_RETURN_IF_ERROR(ParseJsonObject(line, line_no, path, &pairs));
    LabeledItem li;
    for (auto& [key, value] : pairs) {
      if (key == "Item ID") {
        li.item.id = std::move(value);
      } else if (key == "Title") {
        li.item.title = std::move(value);
      } else if (key == "_type") {
        li.label = std::move(value);
      } else {
        li.item.attributes.emplace_back(std::move(key), std::move(value));
      }
    }
    items.push_back(std::move(li));
  }
  return items;
}

std::pair<std::vector<LabeledItem>, std::vector<LabeledItem>> SplitByHash(
    const std::vector<LabeledItem>& items, double test_fraction) {
  std::vector<LabeledItem> train, test;
  const uint64_t threshold =
      static_cast<uint64_t>(test_fraction * 1000000.0);
  for (const auto& li : items) {
    uint64_t h = std::hash<std::string>{}(li.item.id);
    // Mix, then reduce into [0, 1e6).
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    if (h % 1000000 < threshold) {
      test.push_back(li);
    } else {
      train.push_back(li);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace rulekit::data
