#ifndef RULEKIT_DATA_PRODUCT_H_
#define RULEKIT_DATA_PRODUCT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rulekit::data {

/// A product item: a record of attribute-value pairs describing a product
/// (paper §2.1, Figure 1). "Item ID" and "Title" are required and stored as
/// dedicated fields; everything else ("Description", "Brand", "Color",
/// "ISBN", "Price", ...) lives in `attributes`.
struct ProductItem {
  std::string id;
  std::string title;
  std::vector<std::pair<std::string, std::string>> attributes;

  /// Case-sensitive attribute lookup; first match wins.
  std::optional<std::string_view> GetAttribute(std::string_view name) const;

  bool HasAttribute(std::string_view name) const {
    return GetAttribute(name).has_value();
  }

  /// Sets (replacing any existing value of) an attribute.
  void SetAttribute(std::string_view name, std::string_view value);

  /// The "Price" attribute parsed as a double, if present and numeric.
  std::optional<double> Price() const;
};

/// A product item together with its ground-truth product type, used for
/// training data, validation sets, and the synthetic generator's output.
struct LabeledItem {
  ProductItem item;
  std::string label;  // product type name
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_PRODUCT_H_
