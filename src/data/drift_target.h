#ifndef RULEKIT_DATA_DRIFT_TARGET_H_
#define RULEKIT_DATA_DRIFT_TARGET_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace rulekit::data {

/// What a generator must expose for the drift models in drift.h to mutate
/// it. Both synthetic corpora implement this — CatalogGenerator (product
/// titles) and EventStreamGenerator (log lines) — so one DriftInjector
/// drives concept and distribution drift over either workload.
class DriftTarget {
 public:
  virtual ~DriftTarget() = default;

  /// Number of driftable type specs (product types / event types).
  virtual size_t num_drift_specs() const = 0;

  /// Classification label of spec `index`.
  virtual std::string_view drift_spec_name(size_t index) const = 0;

  /// Current popularity weight of spec `index`.
  virtual double drift_spec_weight(size_t index) const = 0;

  /// Concept drift: a brand-new vocabulary word enters spec `index`
  /// (a new qualifier for a product type; a new message phrasing for an
  /// event type). Deployed rules have never seen it.
  virtual void AddConceptWord(size_t index, std::string word) = 0;

  /// Distribution drift: sets spec `index`'s absolute popularity weight.
  virtual void ScaleWeight(size_t index, double weight) = 0;

  /// A fresh made-up word unused anywhere in the target's vocabulary.
  virtual std::string FreshDriftWord() = 0;
};

}  // namespace rulekit::data

#endif  // RULEKIT_DATA_DRIFT_TARGET_H_
