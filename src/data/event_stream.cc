#include "src/data/event_stream.h"

#include <algorithm>
#include <cmath>

namespace rulekit::data {

namespace {

/// Uninformative tokens shared by every event type, so no learner can
/// lean on them (the "from port 22" connective tissue of real syslog).
const char* const kGenericVocab[] = {
    "from", "host", "user", "port", "session", "connection",
    "client", "source", "request", "local", "remote", "daemon",
};
constexpr size_t kGenericVocabSize =
    sizeof(kGenericVocab) / sizeof(kGenericVocab[0]);

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (const auto& token : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += token;
  }
  return out;
}

/// A pronounceable made-up word from a counter ("evq", "evr", ...):
/// deterministic, collision-free with the curated vocabulary (which never
/// uses the "zz" prefix).
std::string CounterWord(const char* prefix, uint64_t id) {
  std::string word = prefix;
  do {
    word.push_back(static_cast<char>('a' + id % 26));
    id /= 26;
  } while (id > 0);
  return word;
}

}  // namespace

std::vector<EventTypeSpec> EventStreamGenerator::CuratedSpecs() {
  // Shaped after SIEM decoder corpora: each type is one decoder's
  // (program, signature phrases) pair plus the incidental vocabulary its
  // messages carry. Keywords are exclusive across types by construction.
  return {
      {"auth-failure",
       "sshd",
       {"failed password", "authentication failure", "invalid user"},
       {"preauth", "ssh2", "tty", "pam"},
       1.0,
       {}},
      {"auth-success",
       "sshd",
       {"accepted password", "accepted publickey", "session opened"},
       {"keyboard", "interactive", "uid", "login"},
       1.0,
       {}},
      {"sudo-exec",
       "sudo",
       {"command executed", "incorrect password attempts"},
       {"pwd", "tty1", "root", "shell"},
       0.8,
       {}},
      {"firewall-drop",
       "kernel",
       {"packet dropped", "connection denied", "blocked inbound"},
       {"iptables", "chain", "proto", "eth0"},
       1.2,
       {}},
      {"firewall-accept",
       "kernel",
       {"packet accepted", "allowed outbound"},
       {"nat", "forward", "policy", "iface"},
       0.9,
       {}},
      {"web-server-error",
       "httpd",
       {"internal server error", "upstream timed out"},
       {"worker", "proxy", "backend", "gateway"},
       1.0,
       {}},
      {"web-not-found",
       "httpd",
       {"file does not exist", "returned code 404"},
       {"referer", "vhost", "docroot", "static"},
       1.1,
       {}},
      {"malware-alert",
       "clamd",
       {"virus detected", "moved to quarantine"},
       {"signature", "scan", "infected", "archive"},
       0.6,
       {}},
      {"disk-alert",
       "smartd",
       {"smart failure predicted", "reallocated sector count"},
       {"device", "ata", "temperature", "offline"},
       0.5,
       {}},
      {"cron-run",
       "cron",
       {"scheduled job started", "job completed"},
       {"crontab", "interval", "batch", "spool"},
       1.0,
       {}},
      {"service-restart",
       "systemd",
       {"service restarted", "unit entered running"},
       {"target", "dependency", "watchdog", "cgroup"},
       0.7,
       {}},
      {"network-scan",
       "snort",
       {"portscan detected", "probe sequence observed"},
       {"priority", "classification", "sid", "sensor"},
       0.6,
       {}},
  };
}

EventStreamGenerator::EventStreamGenerator(const EventStreamConfig& config)
    : config_(config), rng_(config.seed) {
  specs_ = CuratedSpecs();
  if (config_.num_event_types < specs_.size()) {
    specs_.resize(std::max<size_t>(config_.num_event_types, 2));
  }
  while (specs_.size() < config_.num_event_types) {
    specs_.push_back(SynthesizeSpec());
  }
  RebuildSampler();
}

EventTypeSpec EventStreamGenerator::SynthesizeSpec() {
  EventTypeSpec spec;
  size_t ordinal = specs_.size();
  spec.name = "event-type-" + std::to_string(ordinal);
  spec.program = "svc" + std::to_string(ordinal);
  for (size_t k = 0; k < 2; ++k) {
    spec.keywords.push_back(FreshDriftWord() + " " + FreshDriftWord());
  }
  for (size_t f = 0; f < 4; ++f) {
    spec.filler.push_back(FreshDriftWord());
  }
  spec.weight = 0.5 + rng_.NextDouble();
  return spec;
}

void EventStreamGenerator::RebuildSampler() {
  sample_weights_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    // Zipf base by curated order, scaled by the spec's own weight —
    // the same popularity model the catalog generator uses.
    double zipf = 1.0 / std::pow(static_cast<double>(i + 1),
                                 config_.zipf_skew);
    sample_weights_[i] = zipf * std::max(specs_[i].weight, 0.0);
  }
}

size_t EventStreamGenerator::SpecIndexOf(std::string_view type_name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == type_name) return i;
  }
  return kNpos;
}

std::string EventStreamGenerator::RenderLine(const EventTypeSpec& spec,
                                             Rng& rng) {
  std::vector<std::string> body;

  // Drifted shape or a known signature shape?
  double total_share = 0.0;
  for (const auto& variant : spec.variants) total_share += variant.share;
  if (total_share > 0.0 && rng.NextDouble() < std::min(total_share, 1.0)) {
    double pick = rng.NextDouble() * total_share;
    const EventTypeSpec::Variant* chosen = &spec.variants.back();
    for (const auto& variant : spec.variants) {
      if (pick < variant.share) {
        chosen = &variant;
        break;
      }
      pick -= variant.share;
    }
    body = chosen->tokens;
  } else {
    body.push_back(spec.keywords[rng.Uniform(spec.keywords.size())]);
    size_t filler_count = spec.filler.empty() ? 0 : 1 + rng.Uniform(2);
    for (size_t f = 0; f < filler_count; ++f) {
      body.push_back(spec.filler[rng.Uniform(spec.filler.size())]);
    }
  }

  // Connective tissue every type shares.
  size_t generics = 1 + rng.Uniform(2);
  for (size_t g = 0; g < generics; ++g) {
    body.push_back(kGenericVocab[rng.Uniform(kGenericVocabSize)]);
  }
  if (rng.Bernoulli(config_.noise_prob)) {
    body.push_back(CounterWord("x", rng.Next() % 17576));
  }

  return spec.program + ": " + JoinTokens(body);
}

LabeledItem EventStreamGenerator::MakeItem(size_t spec_index, Rng& rng) {
  const EventTypeSpec& spec = specs_[spec_index];
  LabeledItem labeled;
  labeled.item.id = "evt-" + std::to_string(next_event_id_++);
  labeled.item.title = RenderLine(spec, rng);
  labeled.item.SetAttribute("Program", spec.program);
  labeled.label = spec.name;
  return labeled;
}

LabeledItem EventStreamGenerator::Generate() {
  return MakeItem(rng_.WeightedIndex(sample_weights_), rng_);
}

std::vector<LabeledItem> EventStreamGenerator::GenerateMany(size_t n) {
  std::vector<LabeledItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Generate());
  return out;
}

LabeledItem EventStreamGenerator::GenerateOfType(size_t spec_index) {
  return MakeItem(spec_index, rng_);
}

std::vector<LabeledItem> EventStreamGenerator::ReferenceCorpus() const {
  std::vector<LabeledItem> out;
  uint64_t id = 0;
  for (const auto& spec : specs_) {
    for (const auto& keyword : spec.keywords) {
      LabeledItem labeled;
      labeled.item.id = "ref-" + std::to_string(id++);
      labeled.item.title = spec.program + ": " + keyword +
                           (spec.filler.empty() ? "" : " " + spec.filler[0]) +
                           " host";
      labeled.item.SetAttribute("Program", spec.program);
      labeled.label = spec.name;
      out.push_back(std::move(labeled));
    }
    for (const auto& variant : spec.variants) {
      LabeledItem labeled;
      labeled.item.id = "ref-" + std::to_string(id++);
      labeled.item.title =
          spec.program + ": " + JoinTokens(variant.tokens) + " host";
      labeled.item.SetAttribute("Program", spec.program);
      labeled.label = spec.name;
      out.push_back(std::move(labeled));
    }
  }
  return out;
}

std::vector<EventDriftRecord> EventStreamGenerator::InjectDrift(
    const EventDriftOptions& options, size_t magnitude) {
  const size_t n = specs_.size();
  magnitude = std::min(magnitude, n);

  // The plan is derived from options.seed alone (fresh RNG every call),
  // so plan entry i is identical across calls and across generators with
  // the same vocabulary: applying magnitudes k then k+m equals applying
  // k+m at once, and the first k entries are shared by every magnitude
  // >= k — the nesting the monotonicity property needs.
  Rng plan_rng(options.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  plan_rng.Shuffle(order);

  std::vector<EventDriftRecord> applied;
  for (size_t i = 0; i < magnitude; ++i) {
    EventDriftRecord record;
    record.target_spec = order[i];
    record.donor_spec = (order[i] + 1 + plan_rng.Uniform(n - 1)) % n;
    record.fresh_token = CounterWord("zz", plan_rng.Next() % 456976);
    const EventTypeSpec& donor = specs_[record.donor_spec];

    EventTypeSpec::Variant variant;
    if (options.kind == EventDriftKind::kVocabulary) {
      // New phrasing: a fresh signature word dressed in the donor's
      // filler — rules abstain, a stale learner votes for the donor.
      variant.tokens.push_back(record.fresh_token);
      size_t borrow = std::min<size_t>(donor.filler.size(), 3);
      for (size_t f = 0; f < borrow; ++f) {
        variant.tokens.push_back(
            donor.filler[(plan_rng.Uniform(donor.filler.size()) + f) %
                         donor.filler.size()]);
      }
    } else {
      // Bleed: the donor's signature keyword verbatim inside this type's
      // lines — the donor's rule now fires wrongly on them.
      variant.tokens.push_back(
          donor.keywords[plan_rng.Uniform(donor.keywords.size())]);
      variant.tokens.push_back(record.fresh_token);
      variant.tokens.push_back(CounterWord("zz", plan_rng.Next() % 456976));
    }
    variant.share = options.drift_share;

    // Entries below the already-applied watermark were installed by an
    // earlier, smaller-magnitude call; consume the plan RNG identically
    // but do not re-install them.
    if (i >= applied_drift_) {
      specs_[record.target_spec].variants.push_back(std::move(variant));
      applied.push_back(std::move(record));
    }
  }
  applied_drift_ = std::max(applied_drift_, magnitude);
  return applied;
}

void EventStreamGenerator::AddConceptWord(size_t index, std::string word) {
  EventTypeSpec::Variant variant;
  variant.tokens.push_back(std::move(word));
  variant.share = 0.3;
  specs_[index].variants.push_back(std::move(variant));
}

void EventStreamGenerator::ScaleWeight(size_t index, double weight) {
  specs_[index].weight = weight;
  RebuildSampler();
}

std::string EventStreamGenerator::FreshDriftWord() {
  return CounterWord("zq", next_word_id_++);
}

}  // namespace rulekit::data
