// §4 "Rule Quality Evaluation": the three methods and their trade-offs.
//   1. one shared validation set  — cheap per rule, blind to tail rules;
//   2. per-rule crowd samples     — accurate but costly; overlap-aware
//      sampling (ref [18]) recovers much of the cost;
//   3. whole-module estimate      — cheapest, coarsest.
// Plus the §5.3 impactful-rule alerting policy.

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/data/catalog_generator.h"
#include "src/engine/rule_classifier.h"
#include "src/eval/module_eval.h"
#include "src/eval/per_rule_eval.h"
#include "src/eval/tracker.h"
#include "src/eval/validation_set.h"

namespace {

using namespace rulekit;

// True precision of each whitelist rule, from ground truth (the yardstick
// the methods are judged against; the production system never has this).
std::map<std::string, double> TruePrecision(
    const rules::RuleSet& set, const std::vector<data::LabeledItem>& corpus) {
  std::map<std::string, double> out;
  for (const auto& rule : set.rules()) {
    if (!rule.is_active() ||
        rule.kind() != rules::RuleKind::kWhitelist) {
      continue;
    }
    size_t touched = 0, correct = 0;
    for (const auto& li : corpus) {
      if (!rule.Applies(li.item)) continue;
      ++touched;
      if (li.label == rule.target_type()) ++correct;
    }
    out[rule.id()] = touched == 0 ? 1.0
                                  : static_cast<double>(correct) / touched;
  }
  return out;
}

}  // namespace

int main() {
  bench::Header("bench_eval_methods",
                "§4 Rule Quality Evaluation — the three methods");

  data::GeneratorConfig config;
  config.seed = 1006;
  config.num_types = 25;
  data::CatalogGenerator gen(config);
  chimera::SimulatedAnalyst analyst(gen);

  // A realistic mixed-quality rule set: analyst rules for every type plus
  // a few deliberately sloppy rules.
  auto set = std::make_shared<rules::RuleSet>();
  for (const auto& spec : gen.specs()) {
    for (auto& r : analyst.WriteRulesForType(spec.name, 4)) {
      (void)set->Add(std::move(r));
    }
  }
  (void)set->Add(*rules::Rule::Whitelist("sloppy-1", "premium", "rings"));
  (void)set->Add(*rules::Rule::Whitelist("sloppy-2", "deluxe",
                                         "athletic gloves"));
  (void)set->Add(*rules::Rule::Whitelist(
      "sloppy-3", "classic", gen.specs()[3].name));

  auto corpus = gen.GenerateMany(bench::SmokeN(20000, 1200));
  auto truth = TruePrecision(*set, corpus);
  std::printf("rule set: %zu active rules over a %zu-item corpus\n",
              set->CountActive(), corpus.size());

  auto error_vs_truth =
      [&](const std::map<std::string, crowd::PrecisionEstimate>& est) {
        double sum = 0;
        size_t n = 0;
        for (const auto& [id, e] : est) {
          auto it = truth.find(id);
          if (it == truth.end() || e.sample_size == 0) continue;
          sum += std::fabs(e.estimate - it->second);
          ++n;
        }
        return n == 0 ? 1.0 : sum / static_cast<double>(n);
      };

  std::printf("\n  %-34s %-10s %-12s %-10s\n", "method", "questions",
              "rules-cov", "mean |err|");

  // Method 1: shared validation set (cost = labels, not crowd questions).
  {
    const size_t validation_n =
        std::min<size_t>(2000, corpus.size() / 2);
    std::vector<data::LabeledItem> validation(
        corpus.begin(), corpus.begin() + validation_n);
    auto report = eval::EvaluateOnValidationSet(*set, validation);
    std::map<std::string, crowd::PrecisionEstimate> estimates;
    for (const auto& r : report.per_rule) {
      if (r.evaluable) estimates[r.rule_id] = r.estimate;
    }
    const std::string label =
        "1. shared validation set (" + std::to_string(validation_n) + ")";
    std::printf("  %-34s %-10zu %zu/%-10zu %-10.3f\n",
                label.c_str(), report.labeling_cost,
                report.evaluable_rules,
                report.evaluable_rules + report.tail_rules,
                error_vs_truth(estimates));
    std::printf("     tail rules it cannot evaluate: %zu\n",
                report.tail_rules);
  }

  // Method 2: per-rule sampling, independent vs overlap-aware.
  eval::PerRuleEvalConfig pr_config;
  pr_config.samples_per_rule = 20;
  size_t independent_cost = 0;
  {
    crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
    pr_config.exploit_overlap = false;
    auto report = eval::EvaluatePerRule(*set, corpus, crowd, pr_config);
    independent_cost = report.crowd_questions;
    std::printf("  %-34s %-10zu %zu/%-10zu %-10.3f\n",
                "2a. per-rule, independent", report.crowd_questions,
                report.per_rule.size() - report.under_sampled_rules,
                report.per_rule.size(), error_vs_truth(report.per_rule));
  }
  {
    crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
    pr_config.exploit_overlap = true;
    auto report = eval::EvaluatePerRule(*set, corpus, crowd, pr_config);
    std::printf("  %-34s %-10zu %zu/%-10zu %-10.3f\n",
                "2b. per-rule, overlap-aware [18]", report.crowd_questions,
                report.per_rule.size() - report.under_sampled_rules,
                report.per_rule.size(), error_vs_truth(report.per_rule));
    double saving = independent_cost == 0
                        ? 0.0
                        : 100.0 * (1.0 - static_cast<double>(
                                             report.crowd_questions) /
                                             independent_cost);
    std::printf("     overlap sampling saves %.0f%% of the questions\n",
                saving);
  }

  // Method 2c: sequential per-rule evaluation against the deploy bar —
  // resolves clearly-good and clearly-bad rules with far fewer questions
  // than a fixed sample, at the cost of answering a coarser question
  // ("above/below 0.92?" rather than "what is the precision?").
  {
    crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
    size_t above = 0, below = 0, unresolved = 0;
    for (const auto& rule : set->rules()) {
      if (rule.kind() != rules::RuleKind::kWhitelist) continue;
      auto decision = eval::EvaluateRuleUntilResolved(
          rule, corpus, crowd, /*precision_bar=*/0.92, /*max_samples=*/60);
      switch (decision.verdict) {
        case eval::SequentialDecision::Verdict::kAbove: ++above; break;
        case eval::SequentialDecision::Verdict::kBelow: ++below; break;
        default: ++unresolved;
      }
    }
    std::printf("  %-34s %-10zu %-12s %-10s\n",
                "2c. per-rule, sequential @0.92", crowd.num_tasks(),
                "(verdicts)", "n/a");
    std::printf("     verdicts: %zu above bar, %zu below, %zu unresolved "
                "at 60-sample cap\n",
                above, below, unresolved);
  }

  // Method 3: module-level.
  {
    crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
    engine::RuleBasedClassifier module(set);
    auto report = eval::EvaluateModule(module, corpus, crowd, 300);
    std::printf("  %-34s %-10zu %-12s %-10s\n", "3. whole-module estimate",
                report.crowd_questions, "(module)", "n/a");
    std::printf("     module precision estimate: %.3f (CI %.3f-%.3f)\n",
                report.estimate.estimate, report.estimate.lower,
                report.estimate.upper);
  }
  bench::PaperNote("none of the three methods is satisfactory: the shared "
                   "set misses tail rules,");
  bench::PaperNote("per-rule crowdsourcing of tens of thousands of rules is "
                   "prohibitive, and the");
  bench::PaperNote("module estimate gives up per-rule accountability.");

  // §5.3 impactful-rule tracking.
  bench::Section("§5.3 budgeted evaluation: alert when unevaluated rules "
                 "become impactful");
  eval::ImpactTracker tracker(/*impact_threshold=*/200);
  std::vector<data::ProductItem> stream;
  for (const auto& li : corpus) stream.push_back(li.item);
  tracker.RecordBatch(*set, stream);
  auto alerts = tracker.PendingAlerts();
  std::printf("  rules over the %d-match impact threshold and never "
              "evaluated: %zu\n",
              200, alerts.size());
  for (size_t i = 0; i < alerts.size() && i < 5; ++i) {
    std::printf("    %-28s %zu matches\n", alerts[i].rule_id.c_str(),
                alerts[i].matches);
  }
  return 0;
}
