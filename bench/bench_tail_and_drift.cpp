// §2.2/§3.2 motivation experiments: where learning alone fails and rules
// carry the system —
//   (a) tail types with NO training data ("right now Chimera has no
//       training data for many product types");
//   (a') corner cases: trial products of brand-new types from a new vendor;
//   (b) concept drift: new kinds of products join a type; noun-anchored
//       rules and a static learner both miss them until the analyst
//       patches the rule with the synonym finder.

#include <cstdio>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/gen/synonym_finder.h"
#include "src/ml/metrics.h"

namespace {

using namespace rulekit;

ml::EvalSummary Evaluate(const chimera::ChimeraPipeline& pipeline,
                         const std::vector<data::LabeledItem>& batch) {
  std::vector<data::ProductItem> items;
  for (const auto& li : batch) items.push_back(li.item);
  auto report = bench::RunBatch(pipeline, items);
  std::vector<ml::Observation> obs;
  for (size_t i = 0; i < batch.size(); ++i) {
    obs.push_back({batch[i].label, report.predictions[i]});
  }
  return ml::Summarize(obs);
}

}  // namespace

int main() {
  bench::Header("bench_tail_and_drift",
                "§2.2/§3.2 — tail types, corner cases, and concept drift");

  data::GeneratorConfig config;
  config.seed = 1008;
  config.num_types = 20;
  data::CatalogGenerator gen(config);
  chimera::SimulatedAnalyst analyst(gen);

  // ---- (a) tail types -------------------------------------------------------
  bench::Section("(a) tail type with NO training data: learning vs rules");
  auto all_training = analyst.LabelItems(gen.GenerateMany(bench::SmokeN(12000, 1000)));
  std::vector<data::LabeledItem> training;
  for (const auto& li : all_training) {
    if (li.label != "holiday decorations") training.push_back(li);
  }
  std::printf("  training items: %zu (tail type \"holiday decorations\" "
              "has 0)\n",
              training.size());
  size_t tail_spec = gen.SpecIndexOf("holiday decorations");
  auto tail_batch = gen.GenerateManyOfType(tail_spec, 500);

  chimera::PipelineConfig learning_config;
  learning_config.use_rules = false;
  chimera::ChimeraPipeline learning_only(learning_config);
  learning_only.AddTrainingData(training);
  learning_only.RetrainLearning();
  auto tail_learning = Evaluate(learning_only, tail_batch);

  chimera::ChimeraPipeline with_rules;
  (void)with_rules.AddRules(
      analyst.WriteRulesForType("holiday decorations"), "analyst");
  with_rules.AddTrainingData(training);
  with_rules.RetrainLearning();
  auto tail_rules = Evaluate(with_rules, tail_batch);

  std::printf("  %-18s precision=%.3f recall=%.3f\n", "learning-only",
              tail_learning.precision(), tail_learning.recall());
  std::printf("  %-18s precision=%.3f recall=%.3f\n", "with tail rules",
              tail_rules.precision(), tail_rules.recall());
  bench::PaperNote("\"Chimera has no training data for many product types "
                   "... the analysts may\n           want to create as many "
                   "classification rules as possible ... thereby\n           "
                   "increasing the recall\"");

  // ---- (a') corner case: trial products of brand-new types -----------------
  bench::Section("(a') corner case: trial products of brand-new types");
  // A vendor ships products of five types the system has never seen
  // ("Walmart may agree to carry a limited number of new products from a
  // vendor, on a trial basis ... training data for them is not yet
  // available").
  data::GeneratorConfig extended = config;
  extended.num_types = 25;  // types 20..24 are new
  data::CatalogGenerator gen2(extended);
  chimera::SimulatedAnalyst analyst2(gen2);
  std::vector<data::LabeledItem> corner_batch;
  for (size_t t = 20; t < 25; ++t) {
    for (auto& li : gen2.GenerateManyOfType(t, 100)) {
      corner_batch.push_back(std::move(li));
    }
  }
  auto corner_before = Evaluate(with_rules, corner_batch);
  // The analyst eyeballs the vendor feed and writes rules for the new
  // types the same day; learning would need labeled data + retraining.
  for (size_t t = 20; t < 25; ++t) {
    (void)with_rules.AddRules(
        analyst2.WriteRulesForType(gen2.specs()[t].name), "analyst");
  }
  auto corner_after = Evaluate(with_rules, corner_batch);
  std::printf("  before rules for the new types: precision=%.3f "
              "recall=%.3f\n",
              corner_before.precision(), corner_before.recall());
  std::printf("  after rules for the new types:  precision=%.3f "
              "recall=%.3f\n",
              corner_after.precision(), corner_after.recall());
  bench::PaperNote("\"we cannot reliably classify them using learning. On "
                   "the other hand, analysts\n           often can write "
                   "rules to quickly address many of these cases\"");

  // ---- (b) concept drift ----------------------------------------------------
  bench::Section("(b) concept drift: new kinds of \"computer cables\" "
                 "appear");
  size_t cables = gen.SpecIndexOf("computer cables");
  // The rule module in isolation shows the decay; the full system decays
  // more slowly because the learners latch onto surviving qualifier
  // features — both are reported.
  chimera::PipelineConfig rules_only_config;
  rules_only_config.use_learning = false;
  chimera::ChimeraPipeline static_system(rules_only_config);
  (void)static_system.AddRules(
      analyst.WriteRulesForType("computer cables", 99), "analyst");
  chimera::ChimeraPipeline full_system;
  (void)full_system.AddRules(
      analyst.WriteRulesForType("computer cables", 99), "analyst");
  full_system.AddTrainingData(training);
  full_system.RetrainLearning();

  std::printf("  era  rule-module recall  full-system recall  note\n");
  for (size_t era = 0; era <= 3; ++era) {
    if (era > 0) {
      // Two new product kinds join the type each era (the paper's "new
      // types of computer cables keep appearing" — couplers, dongles, ...).
      gen.AddHeadNoun(cables, gen.FreshWord());
      gen.AddHeadNoun(cables, gen.FreshWord());
    }
    auto batch = gen.GenerateManyOfType(cables, 600);
    auto rule_summary = Evaluate(static_system, batch);
    auto full_summary = Evaluate(full_system, batch);
    std::printf("  %-4zu %-19.3f %-19.3f %s\n", era, rule_summary.recall(),
                full_summary.recall(),
                era == 0 ? "baseline" : "unrepaired rules decay");
  }

  // Repair: the analyst reruns the synonym finder over fresh titles with
  // the noun disjunction marked for expansion, and folds the discovered
  // new nouns into a patched rule.
  std::vector<std::string> titles;
  for (const auto& li : gen.GenerateMany(20000)) {
    titles.push_back(li.item.title);
  }
  auto finder = gen::SynonymFinder::Create(
      "(usb|hdmi|ethernet|charging) (cable|cables|\\syn)", titles);
  size_t repaired = 0;
  if (finder.ok()) {
    std::set<std::string> truth(gen.specs()[cables].head_nouns.begin(),
                                gen.specs()[cables].head_nouns.end());
    auto session = gen::RunSynonymSession(
        *finder, [&](const std::string& p) { return truth.count(p) > 0; },
        /*max_iterations=*/4);
    // The analyst folds the discovered noun forms into the head-noun rule
    // itself (not just the usb/hdmi qualifier rule used for discovery).
    std::string pattern = "(cable|cables|cord|cords";
    for (const auto& noun : session.found) pattern += "|" + noun;
    pattern += ")";
    auto rule = rules::Rule::Whitelist("cables-repaired", pattern,
                                       "computer cables");
    if (rule.ok()) {
      (void)static_system.AddRules({std::move(rule).value()}, "analyst");
      repaired = session.found.size();
    }
  }
  auto batch = gen.GenerateManyOfType(cables, 600);
  auto after = Evaluate(static_system, batch);
  std::printf("  repair: synonym finder discovered %zu new noun forms; "
              "recall back to %.3f\n",
              repaired, after.recall());
  bench::PaperNote("\"concept drift ... requires using even more rules to "
                   "patch the system's behavior\"");
  return 0;
}
