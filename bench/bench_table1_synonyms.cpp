// Reproduces Table 1 (§5.1): sample regexes provided by the analyst to the
// synonym-finder tool, and the synonyms it finds. The corpus is the
// synthetic catalog whose type vocabularies seed the same four types.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/data/catalog_generator.h"
#include "src/gen/synonym_finder.h"

namespace {

using namespace rulekit;

struct Table1Row {
  const char* type;
  const char* template_pattern;
  const char* golden;
  const char* paper_synonyms;
};

const Table1Row kRows[] = {
    {"area rugs", "(area|\\syn) rugs?", "area",
     "shaw, oriental, drive, novelty, braided, royal, casual, ivory, "
     "tufted, contemporary, floral"},
    {"athletic gloves", "(athletic|\\syn) gloves?", "athletic",
     "impact, football, training, boxing, golf, workout"},
    {"shorts", "(boys?|\\syn) shorts?", "boys",
     "denim, knit, cotton blend, elastic, loose fit, classic mesh, cargo, "
     "carpenter"},
    {"abrasive wheels & discs", "(abrasive|\\syn) (wheels?|discs?)",
     "abrasive",
     "flap, grinding, fiber, sanding, zirconia fiber, abrasive grinding, "
     "cutter, knot, twisted knot"},
};

}  // namespace

int main() {
  bench::Header("bench_table1_synonyms",
                "Table 1 — sample input regexes and synonyms found");

  data::GeneratorConfig config;
  config.seed = 1001;
  data::CatalogGenerator gen(config);
  std::vector<std::string> titles;
  for (const auto& li : gen.GenerateMany(bench::SmokeN(30000, 2000))) {
    titles.push_back(li.item.title);
  }
  std::printf("corpus: %zu generated titles, %zu types\n", titles.size(),
              gen.specs().size());

  for (const auto& row : kRows) {
    bench::Section(row.type);
    std::printf("  input regex: %s\n", row.template_pattern);

    size_t spec_index = gen.SpecIndexOf(row.type);
    std::set<std::string> truth;
    for (const auto& q : gen.specs()[spec_index].qualifiers) {
      if (q != row.golden) truth.insert(q);
    }

    auto finder = gen::SynonymFinder::Create(row.template_pattern, titles);
    if (!finder.ok()) {
      std::printf("  ERROR: %s\n", finder.status().ToString().c_str());
      continue;
    }
    auto session = gen::RunSynonymSession(
        *finder, [&](const std::string& p) { return truth.count(p) > 0; },
        /*max_iterations=*/3);

    std::printf("  synonyms found (%zu, %zu iterations): ",
                session.found.size(), session.iterations);
    for (const auto& s : session.found) std::printf("%s, ", s.c_str());
    std::printf("\n  ground-truth qualifiers recovered: %zu / %zu\n",
                session.found.size(), truth.size());
    bench::PaperNote("sample synonyms found: %s", row.paper_synonyms);
  }

  std::printf("\nshape check: the tool recovers most of each type's seeded "
              "qualifier vocabulary\nfrom the analyst's one-seed template, "
              "as Table 1 reports for the production tool.\n");
  return 0;
}
