// Durability cost and recovery speed for the write-ahead-logged rule
// store (DESIGN.md §5). Three questions, each at the paper's "tens of
// thousands of rules" scale (20K rules, 200 types):
//
//   1. What does journaling add to a rule-management commit?
//      (no store vs kInterval vs kEveryCommit fsync)
//   2. How fast does WAL replay rebuild the repository after a crash?
//   3. How much faster is recovery from a compacted snapshot?
//
// Writes BENCH_recovery.json next to the binary.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/rules/repository.h"
#include "src/rules/rule.h"
#include "src/storage/rule_store.h"

namespace {

using namespace rulekit;
using storage::DurableRuleStore;
using storage::FsyncPolicy;
using storage::StoreOptions;

const size_t kNumRules = rulekit::bench::SmokeN(20000, 800);
constexpr size_t kNumTypes = 200;
constexpr size_t kShards = 8;

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("rulekit_bench_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

rules::Rule SyntheticRule(size_t i) {
  return *rules::Rule::Whitelist("syn-" + std::to_string(i),
                                 "prodtok" + std::to_string(i),
                                 "type-" + std::to_string(i % kNumTypes));
}

/// Adds kNumRules rules one commit at a time (the analyst edit path, not
/// a bulk import) and returns milliseconds taken.
double TimeCommits(rules::RuleRepository& repo) {
  Stopwatch watch;
  for (size_t i = 0; i < kNumRules; ++i) {
    Status st = repo.Add(SyntheticRule(i), "bench");
    if (!st.ok()) {
      std::fprintf(stderr, "add failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  return watch.ElapsedMillis();
}

struct CommitResult {
  double total_ms = 0;
  double per_commit_us = 0;
};

CommitResult BenchCommits(const char* label, const std::string& dir,
                          FsyncPolicy policy) {
  CommitResult result;
  if (dir.empty()) {
    rules::RuleRepository repo(kShards);
    result.total_ms = TimeCommits(repo);
  } else {
    StoreOptions opts;
    opts.shard_count = kShards;
    opts.fsync_policy = policy;
    opts.compact_wal_bytes = size_t{1} << 30;  // no auto-compaction here
    auto store = DurableRuleStore::Open(dir, opts);
    if (!store.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   store.status().ToString().c_str());
      std::exit(1);
    }
    result.total_ms = TimeCommits(*(*store)->repository());
  }
  result.per_commit_us = result.total_ms * 1000.0 / kNumRules;
  std::printf("  %-28s %9.1f ms total   %7.2f us/commit\n", label,
              result.total_ms, result.per_commit_us);
  return result;
}

}  // namespace

int main() {
  bench::Header("Durable rule store: WAL overhead and crash recovery",
                "Sec 3.3 rule-management layer (durability extension)");
  std::printf("scale: %zu rules, %zu types, %zu shards\n", kNumRules,
              kNumTypes, kShards);

  bench::Section("per-commit WAL append overhead (20K single-op commits)");
  CommitResult in_memory = BenchCommits("in-memory (no store)", "", {});
  std::string interval_dir = FreshDir("interval");
  CommitResult interval =
      BenchCommits("wal, fsync every 64 commits", interval_dir,
                   FsyncPolicy::kInterval);
  std::string every_dir = FreshDir("every");
  CommitResult every = BenchCommits("wal, fsync every commit", every_dir,
                                    FsyncPolicy::kEveryCommit);
  std::printf("  journal overhead: +%.2f us/commit (interval), "
              "+%.2f us/commit (fsync-each)\n",
              interval.per_commit_us - in_memory.per_commit_us,
              every.per_commit_us - in_memory.per_commit_us);
  bench::PaperNote("rules are edited by humans at human rates; even the "
                   "fsync-each policy is invisible next to a rule "
                   "author's think time");

  bench::Section("WAL replay (crash recovery, no snapshot)");
  double wal_ms = 0;
  size_t wal_records = 0;
  {
    Stopwatch watch;
    auto store =
        DurableRuleStore::Open(interval_dir, StoreOptions{.shard_count = kShards});
    if (!store.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    wal_ms = watch.ElapsedMillis();
    wal_records = (*store)->recovery_stats().records_replayed;
    std::printf("  replayed %zu records -> %zu rules in %.1f ms "
                "(%.0f records/s)\n",
                wal_records, (*store)->repository()->rules().size(), wal_ms,
                wal_records / (wal_ms / 1000.0));

    bench::Section("snapshot recovery (after compaction)");
    Status st = (*store)->Compact();
    if (!st.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  double snap_ms = 0;
  {
    Stopwatch watch;
    auto store =
        DurableRuleStore::Open(interval_dir, StoreOptions{.shard_count = kShards});
    if (!store.ok()) {
      std::fprintf(stderr, "snapshot recovery failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    snap_ms = watch.ElapsedMillis();
    std::printf("  recovered %zu rules from snapshot epoch %llu in %.1f ms "
                "(%.1fx faster than replay)\n",
                (*store)->repository()->rules().size(),
                static_cast<unsigned long long>(
                    (*store)->recovery_stats().snapshot_epoch),
                snap_ms, wal_ms / snap_ms);
  }

  std::ofstream json("BENCH_recovery.json");
  json << "{\n"
       << "  \"num_rules\": " << kNumRules << ",\n"
       << "  \"num_types\": " << kNumTypes << ",\n"
       << "  \"shards\": " << kShards << ",\n"
       << "  \"commit_us_in_memory\": " << in_memory.per_commit_us << ",\n"
       << "  \"commit_us_wal_interval\": " << interval.per_commit_us << ",\n"
       << "  \"commit_us_wal_fsync_each\": " << every.per_commit_us << ",\n"
       << "  \"wal_replay_ms\": " << wal_ms << ",\n"
       << "  \"wal_replay_records\": " << wal_records << ",\n"
       << "  \"wal_replay_records_per_sec\": "
       << wal_records / (wal_ms / 1000.0) << ",\n"
       << "  \"snapshot_recovery_ms\": " << snap_ms << ",\n"
       << "  \"snapshot_speedup\": " << wal_ms / snap_ms << "\n"
       << "}\n";
  std::printf("\nwrote BENCH_recovery.json\n");

  fs::remove_all(interval_dir);
  fs::remove_all(every_dir);
  return 0;
}
