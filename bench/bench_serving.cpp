// The serving front-end under open-loop load (DESIGN.md "Serving
// front-end"): a client fires single-title ClassifyRequest frames over
// loopback at a fixed offered rate regardless of completions — the
// arrival process a production front-end actually faces — and a second
// thread drains responses and clocks end-to-end latency. Four questions:
//
//   1. How do p50/p95/p99 move as offered load rises toward saturation,
//      and how much does request coalescing amortize per-call overhead?
//   2. At saturation, does admission control refuse (kOverloaded) rather
//      than buffer without bound?
//   3. Does per-tenant rate limiting keep a noisy flood from wrecking a
//      quiet tenant's tail (target: quiet p99 degrades < 2x)?
//   4. What hot-cache hit rate does a Zipf title stream sustain through
//      the network path?
//
// Writes BENCH_serving.json next to the binary. Loads are sized for a
// small (even single-core) CI box; the shape, not the magnitude, is the
// result.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/data/catalog_generator.h"
#include "src/serving/client.h"
#include "src/serving/server.h"
#include "src/serving/wire.h"

namespace {

using namespace rulekit;
using Clock = std::chrono::steady_clock;

const size_t kNumItems = rulekit::bench::SmokeN(4000, 300);
constexpr size_t kNumTypes = 24;
constexpr double kZipfS = 1.2;

struct Fixture {
  std::unique_ptr<data::CatalogGenerator> gen;
  std::vector<data::ProductItem> items;
  std::unique_ptr<chimera::ChimeraPipeline> pipeline;
};

Fixture BuildFixture() {
  Fixture f;
  data::GeneratorConfig config;
  config.seed = 20150531;  // the paper's SIGMOD
  config.num_types = kNumTypes;
  f.gen = std::make_unique<data::CatalogGenerator>(config);
  for (auto& li : f.gen->GenerateMany(kNumItems)) {
    f.items.push_back(std::move(li.item));
  }

  chimera::PipelineConfig pipeline_config;
  pipeline_config.hot_cache.enabled = true;
  pipeline_config.hot_cache.capacity = 4096;
  pipeline_config.hot_cache.admit_after = 1;
  f.pipeline = std::make_unique<chimera::ChimeraPipeline>(pipeline_config);
  chimera::SimulatedAnalyst analyst(*f.gen);
  for (const auto& spec : f.gen->specs()) {
    Status st =
        f.pipeline->AddRules(analyst.WriteRulesForType(spec.name), "bench");
    if (!st.ok()) {
      std::fprintf(stderr, "AddRules failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }
  return f;
}

/// One open-loop run: `count` single-title requests offered at
/// `rate_per_sec` (send times are scheduled from the start instant, so a
/// slow server cannot slow the arrival process down), titles drawn
/// Zipf(kZipfS) from the fixture pool.
struct LoadResult {
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t other = 0;
  LogHistogram::Snapshot latency_us;
  double actual_rate = 0.0;  // attained send rate, req/s
};

LoadResult RunOpenLoopLoad(serving::RuleClient& client,
                           const std::vector<data::ProductItem>& pool,
                           double rate_per_sec, size_t count,
                           const std::string& tenant, uint64_t seed) {
  LoadResult result;
  LogHistogram latency;
  std::mutex mu;
  std::unordered_map<uint64_t, Clock::time_point> in_flight;

  std::thread receiver([&] {
    for (size_t i = 0; i < count; ++i) {
      auto response = client.Receive();
      if (!response.ok()) break;
      const Clock::time_point now = Clock::now();
      Clock::time_point sent;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = in_flight.find(response->request_id);
        if (it == in_flight.end()) continue;  // should not happen
        sent = it->second;
        in_flight.erase(it);
      }
      switch (response->code) {
        case serving::WireCode::kOk:
          ++result.ok;
          latency.Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                    sent)
                  .count()));
          break;
        case serving::WireCode::kOverloaded:
          ++result.overloaded;
          break;
        default:
          ++result.other;
          break;
      }
    }
  });

  Rng rng(seed);
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / rate_per_sec));
  const Clock::time_point start = Clock::now();
  for (size_t i = 0; i < count; ++i) {
    std::this_thread::sleep_until(start + static_cast<int64_t>(i) * period);
    serving::WireClassifyRequest request;
    request.request_id = i + 1;
    request.tenant = tenant;
    request.items.push_back(
        pool[static_cast<size_t>(rng.Zipf(pool.size(), kZipfS))]);
    {
      std::lock_guard<std::mutex> lock(mu);
      in_flight.emplace(request.request_id, Clock::now());
    }
    Status st = client.Send(request);
    if (!st.ok()) {
      std::fprintf(stderr, "send failed: %s\n", st.ToString().c_str());
      break;
    }
  }
  const double send_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  receiver.join();
  result.latency_us = latency.TakeSnapshot();
  result.actual_rate =
      send_seconds > 0 ? static_cast<double>(count) / send_seconds : 0.0;
  return result;
}

struct SweepPoint {
  double offered = 0.0;
  LoadResult load;
  double batch_mean = 0.0;
  uint64_t coalesced = 0;
  uint64_t rejects = 0;
};

}  // namespace

int main() {
  bench::Header("Serving front-end: open-loop load over loopback",
                "the serving-system shape of paper §3.3 (Chimera serves "
                "classification as a service behind admission control)");

  Fixture f = BuildFixture();

  // ---- 1+2: offered-load sweep, saturation on the last point ----------
  bench::Section("latency vs offered load (open loop, Zipf titles)");
  const std::vector<double> kRates = {250, 500, 1000, 2000, 4000};
  const double kSecondsPerRate = rulekit::bench::SmokeMode() ? 0.2 : 1.2;
  std::vector<SweepPoint> sweep;
  for (double rate : kRates) {
    serving::ServerConfig server_config;
    server_config.coalesce_window = std::chrono::microseconds(500);
    server_config.max_pending = 128;  // bounded: saturation must refuse
    serving::RuleServer server(*f.pipeline, server_config);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    auto client = serving::RuleClient::Connect(server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    const size_t count = static_cast<size_t>(rate * kSecondsPerRate);
    SweepPoint point;
    point.offered = rate;
    point.load = RunOpenLoopLoad(*client, f.items, rate, count, "", 99);
    serving::ServerStats stats = server.stats();
    point.batch_mean = stats.batch_size.Mean();
    point.coalesced = stats.coalesced_requests;
    point.rejects = stats.overload_rejects();
    server.Stop();
    sweep.push_back(point);

    std::printf("  %6.0f req/s offered: p50 %6llu us  p95 %6llu us  "
                "p99 %6llu us  batch mean %.2f  rejected %llu/%zu\n",
                rate,
                static_cast<unsigned long long>(point.load.latency_us.P50()),
                static_cast<unsigned long long>(point.load.latency_us.P95()),
                static_cast<unsigned long long>(point.load.latency_us.P99()),
                point.batch_mean,
                static_cast<unsigned long long>(point.load.overloaded),
                count);
  }
  // Forced saturation: coalescing is what keeps the sweep ahead of the
  // offered load, so saturate the uncoalesced path — a tiny pending
  // queue and no_coalesce requests (each one a full dispatch) at an
  // offered rate the dispatcher cannot match. Admission control must
  // refuse the overflow with kOverloaded instead of queueing it.
  double saturation_reject_rate = 0.0;
  {
    serving::ServerConfig choke_config;
    choke_config.max_pending = 8;
    serving::RuleServer server(*f.pipeline, choke_config);
    if (!server.Start().ok()) return 1;
    auto client = serving::RuleClient::Connect(server.port());
    if (!client.ok()) return 1;
    const size_t kBurst = bench::SmokeN(3000, 200);
    LogHistogram unused;
    uint64_t ok = 0, overloaded = 0;
    std::thread receiver([&] {
      for (size_t i = 0; i < kBurst; ++i) {
        auto response = client->Receive();
        if (!response.ok()) break;
        if (response->code == serving::WireCode::kOk) ++ok;
        if (response->code == serving::WireCode::kOverloaded) ++overloaded;
      }
    });
    Rng rng(31);
    for (size_t i = 0; i < kBurst; ++i) {
      serving::WireClassifyRequest request;
      request.request_id = i + 1;
      request.no_coalesce = true;
      request.items.push_back(
          f.items[static_cast<size_t>(rng.Zipf(f.items.size(), kZipfS))]);
      if (!client->Send(request).ok()) break;
    }
    receiver.join();
    server.Stop();
    saturation_reject_rate =
        static_cast<double>(overloaded) / static_cast<double>(kBurst);
    std::printf("\n  forced saturation (no_coalesce burst, queue of %zu): "
                "%llu served, %llu refused\n",
                choke_config.max_pending,
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(overloaded));
  }
  bench::PaperNote("admission control refuses at saturation instead of "
                   "buffering: reject rate %.2f", saturation_reject_rate);

  // ---- 4: hot-cache hit rate through the network path -----------------
  double hit_rate = 0.0;
  if (f.pipeline->hot_cache() != nullptr) {
    const auto counters = f.pipeline->hot_cache()->TotalCounters();
    hit_rate = counters.lookups == 0
                   ? 0.0
                   : static_cast<double>(counters.hits) /
                         static_cast<double>(counters.lookups);
    std::printf("\n  hot-cache hit rate over the Zipf stream: %.2f "
                "(%llu hits / %llu lookups)\n",
                hit_rate, static_cast<unsigned long long>(counters.hits),
                static_cast<unsigned long long>(counters.lookups));
  }

  // ---- 3: noisy neighbor vs per-tenant rate limiting ------------------
  // Solo baseline: the quiet tenant alone at a gentle rate. Then the
  // same quiet load while a noisy tenant offers 10x over its budget.
  // The token bucket rejects the flood at admission (before the
  // dispatcher), so the quiet tenant's tail should hold near its solo
  // shape — the "< 2x p99 degradation" criterion.
  bench::Section("noisy neighbor: per-tenant token bucket");
  constexpr double kQuietRate = 150;
  constexpr double kNoisyRate = 3000;
  const double kNoisySeconds = bench::SmokeMode() ? 0.3 : 1.5;
  serving::ServerConfig fair_config;
  fair_config.coalesce_window = std::chrono::microseconds(500);
  fair_config.rate_limit_per_sec = 300;  // each tenant's budget
  fair_config.rate_limit_burst = 32;
  serving::RuleServer server(*f.pipeline, fair_config);
  if (!server.Start().ok()) return 1;

  auto quiet_solo = serving::RuleClient::Connect(server.port());
  if (!quiet_solo.ok()) return 1;
  LoadResult solo =
      RunOpenLoopLoad(*quiet_solo, f.items, kQuietRate,
                      static_cast<size_t>(kQuietRate * kNoisySeconds),
                      "quiet", 7);

  auto quiet_conn = serving::RuleClient::Connect(server.port());
  auto noisy_conn = serving::RuleClient::Connect(server.port());
  if (!quiet_conn.ok() || !noisy_conn.ok()) return 1;
  LoadResult noisy_result;
  std::thread noisy([&] {
    noisy_result =
        RunOpenLoopLoad(*noisy_conn, f.items, kNoisyRate,
                        static_cast<size_t>(kNoisyRate * kNoisySeconds),
                        "noisy", 13);
  });
  LoadResult contended =
      RunOpenLoopLoad(*quiet_conn, f.items, kQuietRate,
                      static_cast<size_t>(kQuietRate * kNoisySeconds),
                      "quiet", 21);
  noisy.join();
  serving::ServerStats fair_stats = server.stats();
  server.Stop();

  const double solo_p99 = static_cast<double>(solo.latency_us.P99());
  const double contended_p99 =
      static_cast<double>(contended.latency_us.P99());
  const double degradation =
      solo_p99 > 0 ? contended_p99 / solo_p99 : 0.0;
  const double noisy_reject_rate =
      static_cast<double>(noisy_result.overloaded) /
      static_cast<double>(noisy_result.ok + noisy_result.overloaded +
                          noisy_result.other);
  std::printf("  quiet solo:      p50 %6llu us  p99 %6llu us\n",
              static_cast<unsigned long long>(solo.latency_us.P50()),
              static_cast<unsigned long long>(solo.latency_us.P99()));
  std::printf("  quiet + flood:   p50 %6llu us  p99 %6llu us  "
              "(%.2fx p99)\n",
              static_cast<unsigned long long>(contended.latency_us.P50()),
              static_cast<unsigned long long>(contended.latency_us.P99()),
              degradation);
  std::printf("  noisy tenant:    %.0f%% rejected (%llu rate-limit "
              "rejects server-wide)\n",
              100.0 * noisy_reject_rate,
              static_cast<unsigned long long>(
                  fair_stats.rate_limit_rejects));
  bench::PaperNote("target: quiet p99 degrades < 2x under a 10x-budget "
                   "flood; measured %.2fx", degradation);

  // ---- artifact -------------------------------------------------------
  std::ofstream json("BENCH_serving.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_serving/open_loop_loopback\",\n"
       << "  \"zipf_s\": " << kZipfS << ",\n"
       << "  \"pool_size\": " << kNumItems << ",\n"
       << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    json << "    {\"offered_per_s\": " << p.offered
         << ", \"attained_per_s\": " << p.load.actual_rate
         << ", \"p50_us\": " << p.load.latency_us.P50()
         << ", \"p95_us\": " << p.load.latency_us.P95()
         << ", \"p99_us\": " << p.load.latency_us.P99()
         << ", \"ok\": " << p.load.ok
         << ", \"overloaded\": " << p.load.overloaded
         << ", \"coalesced_batch_mean\": " << p.batch_mean
         << ", \"coalesced_requests\": " << p.coalesced << "}"
         << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"saturation_reject_rate\": " << saturation_reject_rate
       << ",\n"
       << "  \"hot_cache_hit_rate\": " << hit_rate << ",\n"
       << "  \"quiet_solo_p99_us\": " << solo.latency_us.P99() << ",\n"
       << "  \"quiet_contended_p99_us\": " << contended.latency_us.P99()
       << ",\n"
       << "  \"quiet_p99_degradation\": " << degradation << ",\n"
       << "  \"noisy_reject_rate\": " << noisy_reject_rate << "\n"
       << "}\n";
  std::printf("\nwrote BENCH_serving.json\n");
  return 0;
}
