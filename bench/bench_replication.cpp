// Replication subsystem benchmarks (DESIGN.md "Replication"):
//
//   1. Group commit: commits/s through the WAL at 8 concurrent writers
//      under each fsync policy. The claim under test: kGroup delivers
//      >= 3x the throughput of kEveryCommit while keeping per-commit
//      durability (every Append returns only after its bytes are synced
//      — as part of a leader's batch rather than its own fsync).
//   2. Follower replay lag: a primary commits rule edits at a steady
//      rate while a follower streams and applies them; the follower's
//      ship->apply wall-clock lag is sampled throughout.
//   3. Post-quiesce byte-identity: after the stream drains, the
//      follower's exported repository state must be byte-identical to
//      the primary's.
//
// Writes BENCH_replication.json next to the binary. Loads are sized for
// a small CI box; the shape (the group-commit ratio, lag in single-digit
// milliseconds, identity == true), not the magnitude, is the result.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/chimera/pipeline.h"
#include "src/replication/follower.h"
#include "src/replication/shipper.h"
#include "src/rules/rule.h"
#include "src/storage/codec.h"
#include "src/storage/rule_store.h"
#include "src/storage/wal.h"

namespace {

using namespace rulekit;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

const size_t kWriters = rulekit::bench::SmokeN(8, 2);
const size_t kCommitsPerWriter = rulekit::bench::SmokeN(250, 20);
const size_t kReplicationRounds = rulekit::bench::SmokeN(150, 10);

fs::path ScratchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("rulekit_bench_repl_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct WalRun {
  const char* policy = "";
  double commits_per_s = 0;
  uint64_t syncs = 0;
  uint64_t group_batches = 0;
  uint64_t max_group_batch = 0;
};

WalRun BenchWalPolicy(const char* label, storage::FsyncPolicy policy) {
  const fs::path dir = ScratchDir(std::string("wal_") + label);
  auto wal = storage::WriteAheadLog::Open((dir / "bench.wal").string(),
                                          policy);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n",
                 wal.status().ToString().c_str());
    std::exit(1);
  }
  // A realistic commit-record payload size (one rule add, ~200 bytes).
  const std::string payload(200, 'r');
  std::atomic<size_t> failures{0};
  const auto start = Clock::now();
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (size_t i = 0; i < kCommitsPerWriter; ++i) {
        if (!wal->Append(payload).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  const double elapsed = Seconds(start, Clock::now());
  wal->Close();
  if (failures.load() != 0) {
    std::fprintf(stderr, "%zu appends failed\n", failures.load());
    std::exit(1);
  }
  WalRun run;
  run.policy = label;
  run.commits_per_s =
      static_cast<double>(kWriters * kCommitsPerWriter) / elapsed;
  run.syncs = wal->sync_count();
  run.group_batches = wal->group_batches();
  run.max_group_batch = wal->max_group_batch();
  std::printf("  %-12s %10.0f commits/s   %6llu fsyncs", label,
              run.commits_per_s, static_cast<unsigned long long>(run.syncs));
  if (policy == storage::FsyncPolicy::kGroup) {
    std::printf("   (max batch %llu)",
                static_cast<unsigned long long>(run.max_group_batch));
  }
  std::printf("\n");
  return run;
}

std::string StateBytes(const rules::RuleRepository& repo) {
  Encoder enc;
  storage::EncodePersistedState(repo.ExportState(), enc);
  return enc.Release();
}

struct ReplicationRun {
  double commit_rate_per_s = 0;
  double mean_lag_ms = 0;
  double max_lag_ms = 0;
  uint64_t records_applied = 0;
  double quiesce_s = 0;
  bool byte_identical = false;
};

ReplicationRun BenchFollowerLag() {
  const fs::path dir = ScratchDir("primary");
  chimera::PipelineConfig config;
  config.use_learning = false;
  config.storage_dir = dir.string();
  chimera::ChimeraPipeline primary(config);
  if (!primary.storage_status().ok()) {
    std::fprintf(stderr, "primary storage failed: %s\n",
                 primary.storage_status().ToString().c_str());
    std::exit(1);
  }

  replication::LogShipper shipper(*primary.storage(), {});
  if (!shipper.Start().ok()) {
    std::fprintf(stderr, "shipper start failed\n");
    std::exit(1);
  }
  replication::FollowerConfig follower_config;
  follower_config.primary_port = shipper.port();
  follower_config.pipeline.use_learning = false;
  auto follower = replication::ReplicaFollower::Open(follower_config);
  if (!follower.ok()) {
    std::fprintf(stderr, "follower open failed: %s\n",
                 follower.status().ToString().c_str());
    std::exit(1);
  }
  (*follower)->Start();

  // Steady commit stream: one rule add per round, paced so the follower
  // is continuously streaming rather than bursting.
  std::vector<double> lag_samples;
  const auto start = Clock::now();
  for (size_t round = 0; round < kReplicationRounds; ++round) {
    auto rule = rules::Rule::Whitelist(
        "bench-repl-" + std::to_string(round),
        "(benchrepl)[a-z]*" + std::to_string(round), "bench type");
    if (!rule.ok() || !primary.AddRules({*rule}, "bench").ok()) {
      std::fprintf(stderr, "AddRules failed at round %zu\n", round);
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lag_samples.push_back((*follower)->stats().last_lag_ms);
  }
  const double commit_elapsed = Seconds(start, Clock::now());

  const auto quiesce_start = Clock::now();
  const bool caught_up = (*follower)->WaitForPosition(
      primary.storage()->position(), std::chrono::seconds(30));
  const double quiesce_s = Seconds(quiesce_start, Clock::now());
  (*follower)->Stop();
  shipper.Stop();

  ReplicationRun run;
  run.commit_rate_per_s =
      static_cast<double>(kReplicationRounds) / commit_elapsed;
  double sum = 0;
  for (double lag : lag_samples) {
    sum += lag;
    if (lag > run.max_lag_ms) run.max_lag_ms = lag;
  }
  run.mean_lag_ms = lag_samples.empty() ? 0 : sum / lag_samples.size();
  run.records_applied = (*follower)->stats().records_applied;
  run.quiesce_s = quiesce_s;
  run.byte_identical =
      caught_up && StateBytes(primary.repository()) ==
                       StateBytes((*follower)->pipeline().repository());
  std::printf("  commit rate      %10.0f commits/s\n", run.commit_rate_per_s);
  std::printf("  replay lag       mean %.2f ms, max %.2f ms\n",
              run.mean_lag_ms, run.max_lag_ms);
  std::printf("  records applied  %llu\n",
              static_cast<unsigned long long>(run.records_applied));
  std::printf("  quiesce          %.3f s\n", run.quiesce_s);
  std::printf("  byte-identical   %s\n", run.byte_identical ? "yes" : "NO");
  return run;
}

}  // namespace

int main() {
  bench::Header(
      "Replication: group commit, log shipping, follower replay lag",
      "the maintenance-layer scale-out story (rules served from "
      "read-only replicas)");

  bench::Section("group commit: 8 writers through one WAL");
  WalRun every = BenchWalPolicy("every", storage::FsyncPolicy::kEveryCommit);
  WalRun interval = BenchWalPolicy("interval", storage::FsyncPolicy::kInterval);
  WalRun group = BenchWalPolicy("group", storage::FsyncPolicy::kGroup);
  const double speedup =
      every.commits_per_s > 0 ? group.commits_per_s / every.commits_per_s : 0;
  std::printf("  group vs every   %.1fx  (target >= 3x)\n", speedup);

  bench::Section("follower replay lag (streaming primary -> follower)");
  ReplicationRun repl = BenchFollowerLag();

  std::ofstream json("BENCH_replication.json");
  json << "{\n  \"group_commit\": {\n";
  const WalRun* runs[] = {&every, &interval, &group};
  for (size_t i = 0; i < 3; ++i) {
    json << "    \"" << runs[i]->policy << "\": {\"commits_per_s\": "
         << runs[i]->commits_per_s << ", \"fsyncs\": " << runs[i]->syncs
         << ", \"group_batches\": " << runs[i]->group_batches
         << ", \"max_group_batch\": " << runs[i]->max_group_batch << "}"
         << (i + 1 < 3 ? "," : "") << "\n";
  }
  json << "  },\n"
       << "  \"group_vs_every_speedup\": " << speedup << ",\n"
       << "  \"group_speedup_target\": 3.0,\n"
       << "  \"follower\": {\n"
       << "    \"commit_rate_per_s\": " << repl.commit_rate_per_s << ",\n"
       << "    \"mean_lag_ms\": " << repl.mean_lag_ms << ",\n"
       << "    \"max_lag_ms\": " << repl.max_lag_ms << ",\n"
       << "    \"records_applied\": " << repl.records_applied << ",\n"
       << "    \"quiesce_s\": " << repl.quiesce_s << ",\n"
       << "    \"byte_identical\": "
       << (repl.byte_identical ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote BENCH_replication.json\n");
  return repl.byte_identical ? 0 : 1;
}
