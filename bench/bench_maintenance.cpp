// §4 "Rule Maintenance": detecting subsumed / equivalent / overlapping
// rules (with the paper's own examples), flagging rules whose precision
// decays under drift, and retiring rules invalidated by a taxonomy split.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chimera/pipeline.h"
#include "src/common/stopwatch.h"
#include "src/data/catalog_generator.h"
#include "src/data/drift.h"
#include "src/gen/rule_miner.h"
#include "src/maint/drift_monitor.h"
#include "src/maint/overlap.h"
#include "src/maint/subsumption.h"
#include "src/rules/rule_parser.h"

namespace {
using namespace rulekit;

/// 20K literal-pattern rules spread over 200 synthetic types — the
/// "large deployed rule base" a maintenance edit lands in.
std::vector<rules::Rule> SyntheticRuleBase(size_t num_rules,
                                           size_t num_types) {
  std::vector<rules::Rule> out;
  out.reserve(num_rules);
  for (size_t i = 0; i < num_rules; ++i) {
    auto rule = rules::Rule::Whitelist(
        "syn-" + std::to_string(i), "prodtok" + std::to_string(i),
        "type-" + std::to_string(i % num_types));
    if (rule.ok()) out.push_back(std::move(rule).value());
  }
  return out;
}

/// Average milliseconds for a single-rule AddRules (commit + republish),
/// the edit loop a rule analyst lives in.
double TimeSingleRuleEdits(chimera::ChimeraPipeline& pipeline, int rounds,
                           const char* tag) {
  Stopwatch timer;
  for (int round = 0; round < rounds; ++round) {
    auto rule = rules::Rule::Whitelist(
        std::string("edit-") + tag + "-" + std::to_string(round),
        "edittok" + std::to_string(round),
        "type-" + std::to_string(round));
    (void)pipeline.AddRules({*rule}, "bench");
  }
  return timer.ElapsedMillis() / rounds;
}

}  // namespace

int main() {
  bench::Header("bench_maintenance", "§4 Rule Maintenance challenges");

  // ---- subsumption on the paper's examples --------------------------------
  bench::Section("subsumption detection (paper examples)");
  auto hand = rules::ParseRuleSet(R"(
whitelist j1: denim.*jeans? => jeans
whitelist j2: jeans? => jeans
whitelist w1: (abrasive|sand(er|ing))[ -](wheels?|discs?) => abrasive wheels & discs
whitelist w2: abrasive.*(wheels?|discs?) => abrasive wheels & discs
whitelist r1: rings? => rings
whitelist r2: ring|rings => rings
)");
  auto report = maint::FindSubsumedRules(*hand);
  std::printf("  pairs checked %zu, findings %zu, skipped %zu\n",
              report.pairs_checked, report.findings.size(),
              report.skipped_pairs);
  for (const auto& f : report.findings) {
    std::printf("    %-4s subsumed by %-4s%s\n", f.subsumed.c_str(),
                f.by.c_str(), f.equivalent ? "  (equivalent)" : "");
  }
  bench::PaperNote("\"denim.*jeans?\" should be detected as subsumed by "
                   "\"jeans?\" and removed;");
  bench::PaperNote("the two wheels&discs rules overlap but neither "
                   "subsumes the other.");

  // ---- subsumption at mined-rule scale ------------------------------------
  bench::Section("subsumption scan over a mined rule set");
  data::GeneratorConfig config;
  config.seed = 1007;
  config.num_types = 20;
  data::CatalogGenerator gen(config);
  auto labeled = gen.GenerateMany(15000);
  gen::RuleMinerConfig miner_config;
  miner_config.min_support = 0.02;
  auto outcome = gen::MineRules(labeled, miner_config);
  auto mined_set = std::make_shared<rules::RuleSet>();
  size_t id = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("m" + std::to_string(id++));
    if (rule.ok()) (void)mined_set->Add(std::move(rule).value());
  }
  Stopwatch timer;
  auto mined_report = maint::FindSubsumedRules(*mined_set);
  std::printf("  %zu mined rules -> %zu pairs in %.2fs; %zu findings "
              "(%.0f%% decided by the token fast path)\n",
              mined_set->size(), mined_report.pairs_checked,
              timer.ElapsedSeconds(), mined_report.findings.size(),
              mined_report.pairs_checked == 0
                  ? 0.0
                  : 100.0 * mined_report.fast_path_hits /
                        mined_report.pairs_checked);

  // ---- overlap -------------------------------------------------------------
  bench::Section("coverage-overlap detection (consolidation candidates)");
  std::vector<data::ProductItem> corpus;
  for (auto& li : gen.GenerateMany(6000)) corpus.push_back(li.item);
  auto overlaps = maint::FindOverlappingRules(*hand, corpus, 0.3);
  for (const auto& o : overlaps) {
    std::printf("  %-4s ~ %-4s jaccard=%.2f (|A|=%zu |B|=%zu |A∩B|=%zu)\n",
                o.rule_a.c_str(), o.rule_b.c_str(), o.jaccard, o.coverage_a,
                o.coverage_b, o.intersection);
  }

  // ---- drift-induced decay and repair -------------------------------------
  bench::Section("drift: windowed precision decay, flagging, and repair");
  // A rule keyed to one type's *current* qualifier; concept drift then
  // introduces new qualifiers it doesn't know, and distribution drift
  // changes what it sees. Track a deliberately brittle rule: qualifier of
  // another type + this type's noun appearing via confusers.
  size_t cables = gen.SpecIndexOf("computer cables");
  auto brittle = *rules::Rule::Whitelist(
      "brittle", "usb", "computer cables");  // usb anything => cables
  maint::RulePrecisionMonitor monitor({.window_size = 200,
                                       .min_verdicts = 30,
                                       .precision_floor = 0.9});
  data::DriftConfig drift_config;
  drift_config.concept_drift_types_per_era = 5;
  data::DriftInjector drift(gen, drift_config);

  std::printf("  era  matches  windowed-precision  flagged\n");
  for (size_t era = 0; era <= 4; ++era) {
    if (era > 0) {
      auto event = drift.AdvanceEra();
      // Concept drift for the brittle rule's home type: "usb" qualifiers
      // spread into other types' titles (new cross-type products).
      for (size_t other = 0; other < gen.specs().size(); ++other) {
        if (other != cables && era >= 2 && other % (6 - era) == 0) {
          gen.AddQualifier(other, "usb");
        }
      }
      (void)event;
    }
    auto batch = gen.GenerateMany(3000);
    size_t matches = 0;
    for (const auto& li : batch) {
      if (!brittle.Applies(li.item)) continue;
      ++matches;
      monitor.RecordVerdict("brittle",
                            li.label == brittle.target_type());
    }
    auto flags = monitor.FlaggedRules();
    std::printf("  %-4zu %-8zu %-19.3f %s\n", era, matches,
                monitor.WindowedPrecision("brittle"),
                flags.empty() ? "-" : "FLAGGED");
  }
  bench::PaperNote("\"monitor and remove rules that become imprecise ... "
                   "the universe of products is constantly changing\"");

  // ---- taxonomy split ------------------------------------------------------
  bench::Section("taxonomy split invalidates rules (pants -> work pants, "
                 "jeans)");
  auto pants_rules = rules::ParseRuleSet(R"(
whitelist p1: pants? => pants
whitelist p2: slacks? => pants
whitelist j9: jeans? => jeans
)");
  data::Taxonomy taxonomy;
  taxonomy.AddType("pants");
  taxonomy.AddType("jeans");
  (void)taxonomy.SplitType("pants", {"work pants", "jeans"});
  auto inapplicable = maint::FindInapplicableRules(*pants_rules, taxonomy);
  for (const auto& r : inapplicable) {
    std::printf("  rule %-4s targets retired \"%s\"; rewrite against: ",
                r.rule_id.c_str(), r.retired_type.c_str());
    for (const auto& t : r.replacements) std::printf("%s, ", t.c_str());
    std::printf("\n");
  }
  bench::PaperNote("\"when 'pants' is divided into 'work pants' and "
                   "'jeans', the rules written for 'pants' become "
                   "inapplicable\"");

  // ---- sharded vs monolithic republish ------------------------------------
  bench::Section("rule-edit latency: sharded vs monolithic republish");
  const size_t kRules = bench::SmokeN(20000, 600);
  constexpr size_t kTypes = 200;
  constexpr size_t kShards = 16;
  constexpr int kEditRounds = 5;

  chimera::PipelineConfig mono_config;
  mono_config.use_learning = false;
  mono_config.rule_shards = 1;
  chimera::ChimeraPipeline monolithic(mono_config);
  (void)monolithic.AddRules(SyntheticRuleBase(kRules, kTypes), "seed");

  chimera::PipelineConfig sharded_config;
  sharded_config.use_learning = false;
  sharded_config.rule_shards = kShards;
  chimera::ChimeraPipeline sharded(sharded_config);
  (void)sharded.AddRules(SyntheticRuleBase(kRules, kTypes), "seed");

  double mono_ms = TimeSingleRuleEdits(monolithic, kEditRounds, "mono");
  double sharded_ms = TimeSingleRuleEdits(sharded, kEditRounds, "shard");
  double speedup = sharded_ms > 0 ? mono_ms / sharded_ms : 0.0;
  std::printf("  %zu rules, %zu types; avg single-rule AddRules+republish "
              "over %d edits\n",
              kRules, kTypes, kEditRounds);
  std::printf("  monolithic (1 shard):  %8.2f ms/edit\n", mono_ms);
  std::printf("  sharded   (%zu shards): %8.2f ms/edit   -> %.1fx faster\n",
              kShards, sharded_ms, speedup);
  bench::PaperNote("an edit should pay for the rules it touches, not the "
                   "whole deployed rule base");

  // Output invariance across shard count and threading, on live titles.
  std::vector<data::ProductItem> probe_items;
  for (size_t i = 0; i < kRules; i += 97) {
    data::ProductItem item;
    item.title = "prodtok" + std::to_string(i) + " widget";
    probe_items.push_back(std::move(item));
  }
  chimera::PipelineConfig par_config = sharded_config;
  par_config.batch_threads = 4;
  chimera::ChimeraPipeline parallel(par_config);
  (void)parallel.AddRules(SyntheticRuleBase(kRules, kTypes), "seed");
  auto mono_report = bench::RunBatch(monolithic, probe_items);
  auto shard_report = bench::RunBatch(sharded, probe_items);
  auto par_report = bench::RunBatch(parallel, probe_items);
  size_t mismatches = 0;
  for (size_t i = 0; i < probe_items.size(); ++i) {
    if (mono_report.predictions[i] != shard_report.predictions[i] ||
        shard_report.predictions[i] != par_report.predictions[i]) {
      ++mismatches;
    }
  }
  std::printf("  invariance probe: %zu titles, %zu mismatches "
              "(monolithic vs sharded vs sharded+parallel)\n",
              probe_items.size(), mismatches);

  std::ofstream json("BENCH_maintenance.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_maintenance\",\n"
       << "  \"subsumption_findings\": " << report.findings.size() << ",\n"
       << "  \"mined_rules\": " << mined_set->size() << ",\n"
       << "  \"republish\": {\n"
       << "    \"rules\": " << kRules << ",\n"
       << "    \"types\": " << kTypes << ",\n"
       << "    \"shards\": " << kShards << ",\n"
       << "    \"edit_rounds\": " << kEditRounds << ",\n"
       << "    \"monolithic_ms_per_edit\": " << mono_ms << ",\n"
       << "    \"sharded_ms_per_edit\": " << sharded_ms << ",\n"
       << "    \"speedup\": " << speedup << ",\n"
       << "    \"invariance_mismatches\": " << mismatches << "\n"
       << "  }\n"
       << "}\n";
  std::printf("  wrote BENCH_maintenance.json\n");
  return 0;
}
