// Reproduces the §5.2 empirical evaluation of rule generation from labeled
// data (scaled to the synthetic catalog; paper numbers in brackets):
//   - 885K labeled products / 3707 types  -> mined 874K candidate rules
//   - selection at alpha=0.7 -> 63K high-confidence + 37K low-confidence
//   - estimated precision 95% (high) / 92% (low)
//   - deploying both sets cut the items the system declines to classify
//     by 18% while keeping precision >= 92%.
// Also runs the Greedy vs Greedy-Biased ablation from DESIGN.md.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/crowd/crowd.h"
#include "src/data/catalog_generator.h"
#include "src/engine/rule_classifier.h"
#include "src/eval/module_eval.h"
#include "src/gen/rule_miner.h"
#include "src/gen/rule_selection.h"
#include "src/ml/metrics.h"

namespace {

using namespace rulekit;

std::shared_ptr<rules::RuleSet> ToRuleSet(
    const std::vector<gen::MinedRule>& mined, bool high_confidence,
    double alpha) {
  auto set = std::make_shared<rules::RuleSet>();
  size_t id = 0;
  for (const auto& r : mined) {
    if ((r.confidence >= alpha) != high_confidence) continue;
    auto rule = r.ToRule((high_confidence ? "hi-" : "lo-") +
                         std::to_string(id++));
    if (rule.ok()) (void)set->Add(std::move(rule).value());
  }
  return set;
}

}  // namespace

int main() {
  bench::Header("bench_sec52_rule_mining",
                "§5.2 empirical evaluation — mining rules from labeled data");

  data::GeneratorConfig config;
  config.seed = 1052;
  config.num_types = 40;
  data::CatalogGenerator generator(config);

  auto labeled = generator.GenerateMany(bench::SmokeN(30000, 2000));
  std::printf("labeled data: %zu items, %zu types  [paper: 885K items, "
              "3707 types]\n",
              labeled.size(), generator.specs().size());

  gen::RuleMinerConfig miner_config;
  miner_config.min_support = 0.005;
  miner_config.alpha = 0.7;
  auto outcome = gen::MineRules(labeled, miner_config);

  bench::Section("mining + selection");
  std::printf("  frequent sequences mined:     %zu\n",
              outcome.candidates_mined);
  std::printf("  consistent candidates:        %zu\n",
              outcome.candidates_consistent);
  std::printf("  selected rules:               %zu\n",
              outcome.selected.size());
  std::printf("  high-confidence (>= %.1f):     %zu (%.0f%%)\n",
              miner_config.alpha, outcome.num_high_confidence,
              100.0 * outcome.num_high_confidence /
                  std::max<size_t>(1, outcome.selected.size()));
  std::printf("  low-confidence:               %zu (%.0f%%)\n",
              outcome.num_low_confidence,
              100.0 * outcome.num_low_confidence /
                  std::max<size_t>(1, outcome.selected.size()));
  bench::PaperNote("874K mined -> 63K high (63%%) + 37K low (37%%)");

  // ---- precision of the two sets, crowd-estimated on fresh data ----------
  bench::Section("precision of the selected rule sets (crowd-estimated)");
  auto fresh = generator.GenerateMany(bench::SmokeN(8000, 600));
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};
  auto high_set = ToRuleSet(outcome.selected, true, miner_config.alpha);
  auto low_set = ToRuleSet(outcome.selected, false, miner_config.alpha);
  engine::RuleBasedClassifier high_module(high_set);
  engine::RuleBasedClassifier low_module(low_set);
  auto high_eval = eval::EvaluateModule(high_module, fresh, crowd, 400);
  auto low_eval = eval::EvaluateModule(low_module, fresh, crowd, 400);
  std::printf("  high-confidence set: precision %.3f  (CI %.3f-%.3f, "
              "touches %zu items)\n",
              high_eval.estimate.estimate, high_eval.estimate.lower,
              high_eval.estimate.upper, high_eval.items_touched);
  std::printf("  low-confidence set:  precision %.3f  (CI %.3f-%.3f, "
              "touches %zu items)\n",
              low_eval.estimate.estimate, low_eval.estimate.lower,
              low_eval.estimate.upper, low_eval.items_touched);
  bench::PaperNote("high = 95%%, low = 92%%; both cleared the 92%% bar");

  // ---- the 18% reduction in unclassified items ----------------------------
  bench::Section("deploying the mined rules in the classification system");
  // Baseline system: learning trained on 70% of the types (the paper notes
  // ~30% of types lacked training data), plus attribute/brand rules.
  chimera::SimulatedAnalyst analyst(generator);
  chimera::ChimeraPipeline pipeline;
  (void)pipeline.AddRules(analyst.WriteAttributeRules(), "analyst");
  (void)pipeline.AddRules(analyst.WriteBrandRules(), "analyst");
  std::set<std::string> trained_types;
  for (size_t t = 0; t < generator.specs().size() * 7 / 10; ++t) {
    trained_types.insert(generator.specs()[t].name);
  }
  std::vector<data::LabeledItem> training;
  for (const auto& li : labeled) {
    if (trained_types.count(li.label)) training.push_back(li);
  }
  pipeline.AddTrainingData(training);
  pipeline.RetrainLearning();

  std::vector<data::ProductItem> batch;
  for (const auto& li : fresh) batch.push_back(li.item);
  auto before = bench::RunBatch(pipeline, batch);
  std::vector<ml::Observation> obs_before;
  for (size_t i = 0; i < fresh.size(); ++i) {
    obs_before.push_back({fresh[i].label, before.predictions[i]});
  }
  auto sum_before = ml::Summarize(obs_before);
  size_t unclassified_before = fresh.size() - sum_before.predicted;

  // Deploy every selected mined rule, carrying its set's crowd-validated
  // precision as the voting confidence — the paper adds the sets only
  // after their precision estimates cleared the bar, and that estimate is
  // the system's trust in them.
  std::vector<rules::Rule> mined_rules;
  size_t id = 0;
  for (const auto& mined : outcome.selected) {
    auto rule = mined.ToRule("mined-" + std::to_string(id++));
    if (!rule.ok()) continue;
    rule->metadata().confidence = mined.confidence >= miner_config.alpha
                                      ? high_eval.estimate.estimate
                                      : low_eval.estimate.estimate;
    mined_rules.push_back(std::move(rule).value());
  }
  (void)pipeline.AddRules(std::move(mined_rules), "rule-miner");

  auto after = bench::RunBatch(pipeline, batch);
  std::vector<ml::Observation> obs_after;
  for (size_t i = 0; i < fresh.size(); ++i) {
    obs_after.push_back({fresh[i].label, after.predictions[i]});
  }
  auto sum_after = ml::Summarize(obs_after);
  size_t unclassified_after = fresh.size() - sum_after.predicted;

  double reduction =
      unclassified_before == 0
          ? 0.0
          : 100.0 *
                (static_cast<double>(unclassified_before) -
                 static_cast<double>(unclassified_after)) /
                static_cast<double>(unclassified_before);
  std::printf("  before: unclassified %zu / %zu, precision %.3f\n",
              unclassified_before, fresh.size(), sum_before.precision());
  std::printf("  after:  unclassified %zu / %zu, precision %.3f\n",
              unclassified_after, fresh.size(), sum_after.precision());
  std::printf("  reduction in unclassified items: %.1f%%\n", reduction);
  bench::PaperNote("18%% reduction, precision maintained at >= 92%%");

  // ---- ablation: Greedy vs Greedy-Biased ---------------------------------
  bench::Section("ablation: Algorithm 1 (Greedy) vs Algorithm 2 (Biased)");
  // Aggregate over every type, tight quota, using all consistent
  // candidates.
  std::map<std::string, std::vector<gen::SelectionCandidate>> per_type;
  std::map<std::string, size_t> universe_of;
  {
    gen::RuleMinerConfig keep_all = miner_config;
    keep_all.max_rules_per_type = 1u << 30;
    auto all = gen::MineRules(labeled, keep_all);
    for (const auto& r : all.selected) {
      per_type[r.type].push_back({r.confidence, r.covered});
    }
    for (const auto& li : labeled) ++universe_of[li.label];
  }
  const size_t quota = 10;
  size_t types_compared = 0, types_differ = 0;
  double plain_conf_sum = 0, biased_conf_sum = 0;
  double plain_cov_sum = 0, biased_cov_sum = 0;
  for (const auto& [type, cands] : per_type) {
    size_t universe = universe_of[type];
    auto plain = gen::GreedySelect(cands, universe, quota);
    auto biased = gen::GreedyBiasedSelect(cands, universe, quota,
                                          miner_config.alpha);
    auto mean_conf = [&](const std::vector<size_t>& picked) {
      double sum = 0;
      for (size_t i : picked) sum += cands[i].confidence;
      return picked.empty() ? 0.0 : sum / picked.size();
    };
    auto coverage_of = [&](const std::vector<size_t>& picked) {
      std::set<uint32_t> covered;
      for (size_t i : picked) {
        covered.insert(cands[i].covered.begin(), cands[i].covered.end());
      }
      return universe == 0
                 ? 0.0
                 : static_cast<double>(covered.size()) / universe;
    };
    ++types_compared;
    auto sorted_plain = plain;
    auto sorted_biased = biased;
    std::sort(sorted_plain.begin(), sorted_plain.end());
    std::sort(sorted_biased.begin(), sorted_biased.end());
    if (sorted_plain != sorted_biased) ++types_differ;
    plain_conf_sum += mean_conf(plain);
    biased_conf_sum += mean_conf(biased);
    plain_cov_sum += coverage_of(plain);
    biased_cov_sum += coverage_of(biased);
  }
  std::printf("  %zu types, quota %zu per type; selections differ for %zu "
              "types\n",
              types_compared, quota, types_differ);
  std::printf("  Greedy:        mean confidence %.3f, mean coverage %.3f\n",
              plain_conf_sum / types_compared,
              plain_cov_sum / types_compared);
  std::printf("  Greedy-Biased: mean confidence %.3f, mean coverage %.3f\n",
              biased_conf_sum / types_compared,
              biased_cov_sum / types_compared);

  // Controlled case: one wide low-confidence rule vs narrow
  // high-confidence ones — the scenario Algorithm 2 was designed for
  // ("rules with low confidence scores may be selected if they have wide
  // coverage ... analysts prefer rules with high confidence").
  std::vector<gen::SelectionCandidate> controlled = {
      {0.30, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
      {0.95, {0, 1, 2}},
      {0.95, {3, 4, 5}},
  };
  auto plain1 = gen::GreedySelect(controlled, 10, 1);
  auto biased1 = gen::GreedyBiasedSelect(controlled, 10, 1, 0.7);
  std::printf("  controlled case (quota 1): Greedy picks conf=%.2f, "
              "Greedy-Biased picks conf=%.2f\n",
              controlled[plain1[0]].confidence,
              controlled[biased1[0]].confidence);
  std::printf("\nshape check: Greedy-Biased never selects lower-confidence "
              "rules than Greedy\nfor the same quota, and prefers "
              "high-confidence rules whenever the pools conflict.\n");
  return 0;
}
