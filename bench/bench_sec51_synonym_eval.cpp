// Reproduces the §5.1 empirical evaluation of the synonym finder:
//   "We have evaluated the tool using 25 input regexes ... the tool found
//    synonyms for 24 regexes, within three iterations. The largest and
//    smallest number of synonyms found are 24 and 2 ... average 7 per
//    regex. The average time spent by the analyst per regex is 4 minutes,
//    a significant reduction from hours."
// Also runs the Rocchio-feedback ablation called out in DESIGN.md.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/data/catalog_generator.h"
#include "src/gen/synonym_finder.h"

namespace {

using namespace rulekit;

// "(q0|\syn) (noun1|noun2|...)" for a type spec, seeded with its first
// qualifier.
std::string TemplateFor(const data::TypeSpec& spec) {
  std::vector<std::string> nouns;
  for (const auto& n : spec.head_nouns) nouns.push_back(RegexEscape(n));
  return "(" + RegexEscape(spec.qualifiers.front()) + "|\\syn) (" +
         Join(nouns, "|") + ")";
}

struct EvalTotals {
  size_t regexes = 0;
  size_t with_synonyms = 0;
  size_t total_found = 0;
  size_t min_found = static_cast<size_t>(-1);
  size_t max_found = 0;
  size_t total_iterations = 0;
  size_t total_reviewed = 0;
};

EvalTotals RunEval(const data::CatalogGenerator& gen,
                   const std::vector<std::string>& titles,
                   bool use_feedback, size_t num_regexes,
                   size_t batch_size = 10, size_t max_iterations = 3) {
  EvalTotals totals;
  for (size_t t = 0; t < num_regexes && t < gen.specs().size(); ++t) {
    const auto& spec = gen.specs()[t];
    if (spec.qualifiers.size() < 2) continue;
    std::set<std::string> truth(spec.qualifiers.begin() + 1,
                                spec.qualifiers.end());
    gen::SynonymFinderConfig config;
    config.use_feedback = use_feedback;
    config.batch_size = batch_size;
    auto finder = gen::SynonymFinder::Create(TemplateFor(spec), titles,
                                             config);
    if (!finder.ok()) continue;
    auto session = gen::RunSynonymSession(
        *finder, [&](const std::string& p) { return truth.count(p) > 0; },
        max_iterations);
    ++totals.regexes;
    if (!session.found.empty()) ++totals.with_synonyms;
    totals.total_found += session.found.size();
    totals.min_found = std::min(totals.min_found, session.found.size());
    totals.max_found = std::max(totals.max_found, session.found.size());
    totals.total_iterations += session.iterations;
    totals.total_reviewed += session.candidates_reviewed;
  }
  return totals;
}

void PrintTotals(const EvalTotals& totals) {
  double avg_found = totals.regexes == 0
                         ? 0.0
                         : static_cast<double>(totals.total_found) /
                               static_cast<double>(totals.regexes);
  double avg_iters = totals.regexes == 0
                         ? 0.0
                         : static_cast<double>(totals.total_iterations) /
                               static_cast<double>(totals.regexes);
  // Analyst time model: ~12 seconds to review one candidate (read phrase +
  // three sample titles, click).
  double avg_minutes = totals.regexes == 0
                           ? 0.0
                           : totals.total_reviewed * 12.0 / 60.0 /
                                 static_cast<double>(totals.regexes);
  std::printf("  regexes evaluated:            %zu\n", totals.regexes);
  std::printf("  regexes with synonyms found:  %zu\n", totals.with_synonyms);
  std::printf("  synonyms found min/avg/max:   %zu / %.1f / %zu\n",
              totals.min_found == static_cast<size_t>(-1)
                  ? 0
                  : totals.min_found,
              avg_found, totals.max_found);
  std::printf("  avg feedback iterations:      %.1f (cap 3)\n", avg_iters);
  std::printf("  est. analyst minutes/regex:   %.1f\n", avg_minutes);
}

}  // namespace

int main() {
  bench::Header("bench_sec51_synonym_eval",
                "§5.1 empirical evaluation (25 input regexes)");

  data::GeneratorConfig config;
  config.seed = 1051;
  config.num_types = 25;  // 25 types -> 25 input regexes
  data::CatalogGenerator gen(config);
  std::vector<std::string> titles;
  for (const auto& li : gen.GenerateMany(bench::SmokeN(25000, 1500))) {
    titles.push_back(li.item.title);
  }
  std::printf("corpus: %zu titles; one input regex per type, golden = the "
              "type's first qualifier\n",
              titles.size());

  bench::Section("with Rocchio feedback (the deployed configuration)");
  auto with = RunEval(gen, titles, /*use_feedback=*/true, 25);
  PrintTotals(with);
  bench::PaperNote("25 regexes; synonyms found for 24 within 3 iterations");
  bench::PaperNote("min/avg/max synonyms = 2 / 7 / 24");
  bench::PaperNote("avg analyst time 4 minutes (down from hours)");

  bench::Section("ablation: Rocchio feedback on vs off (batch size 4, "
                 "4 iterations --\n    tighter batches make the re-ranking "
                 "between batches do the work)");
  auto with_small = RunEval(gen, titles, /*use_feedback=*/true, 25, 4, 4);
  std::printf("  feedback ON:\n");
  PrintTotals(with_small);
  auto without = RunEval(gen, titles, /*use_feedback=*/false, 25, 4, 4);
  std::printf("  feedback OFF:\n");
  PrintTotals(without);
  std::printf("\nshape check: feedback configuration finds >= as many "
              "synonyms in the same\niteration budget (%zu vs %zu total), "
              "and minutes-not-hours holds.\n",
              with_small.total_found, without.total_found);
  return 0;
}
