// Reproduces the §3.3 deployment claims about Chimera:
//   - the learning-only first solution "did not reach the required 92%
//     precision threshold";
//   - adding rules "significantly helps improve both precision and
//     recall, with precision consistently in the range 92-93%";
//   - rule mix: 15,058 whitelist + 5,401 blacklist (≈74%/26%);
//   - ~30% of types had insufficient training data and were "handled
//     primarily by the rule-based and attribute/value-based classifiers".

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/ml/metrics.h"

namespace {

using namespace rulekit;

struct ConfigResult {
  ml::EvalSummary summary;
  size_t whitelist = 0;
  size_t blacklist = 0;
};

ml::EvalSummary Evaluate(const chimera::ChimeraPipeline& pipeline,
                         const std::vector<data::LabeledItem>& batch) {
  std::vector<data::ProductItem> items;
  for (const auto& li : batch) items.push_back(li.item);
  auto report = bench::RunBatch(pipeline, items);
  std::vector<ml::Observation> obs;
  for (size_t i = 0; i < batch.size(); ++i) {
    obs.push_back({batch[i].label, report.predictions[i]});
  }
  return ml::Summarize(obs);
}

}  // namespace

int main() {
  bench::Header("bench_sec33_chimera",
                "§3.3 — learning-only vs rules-only vs learning+rules");

  data::GeneratorConfig config;
  config.seed = 1033;
  config.num_types = 30;
  data::CatalogGenerator gen(config);
  // First-responder analysts label quickly and imperfectly; the learners
  // inherit that noise, the rules don't.
  chimera::AnalystConfig analyst_config;
  analyst_config.labeling_accuracy = 0.85;
  chimera::SimulatedAnalyst analyst(gen, analyst_config);

  // Training data exists for only 70% of the types (paper: ~30% of types
  // had insufficient training data). Noise comes from analyst labeling.
  std::set<std::string> trained_types;
  for (size_t t = 0; t < gen.specs().size() * 7 / 10; ++t) {
    trained_types.insert(gen.specs()[t].name);
  }
  std::vector<data::LabeledItem> training;
  for (const auto& li : analyst.LabelItems(gen.GenerateMany(bench::SmokeN(15000, 1200)))) {
    if (trained_types.count(li.label)) training.push_back(li);
  }

  // Analyst rules for every type (rules are exactly how the uncovered 30%
  // gets handled), plus error-driven blacklists after a dry run.
  auto make_rules = [&](chimera::ChimeraPipeline& p) {
    for (const auto& spec : gen.specs()) {
      (void)p.AddRules(analyst.WriteRulesForType(spec.name, 3), "analyst");
    }
    (void)p.AddRules(analyst.WriteAttributeRules(), "analyst");
    (void)p.AddRules(analyst.WriteBrandRules(), "analyst");
  };

  auto eval_batch = gen.GenerateMany(bench::SmokeN(8000, 600));

  bench::Section("configuration comparison (same 8000-item batch)");
  std::printf("  %-18s %-10s %-10s %-10s %-9s %-9s\n", "config",
              "precision", "recall", "coverage", "whitelist", "blacklist");

  auto run = [&](const char* name, bool use_rules, bool use_learning) {
    chimera::PipelineConfig pconfig;
    pconfig.use_rules = use_rules;
    pconfig.use_learning = use_learning;
    chimera::ChimeraPipeline pipeline(pconfig);
    if (use_rules) make_rules(pipeline);
    if (use_learning) {
      pipeline.AddTrainingData(training);
      pipeline.RetrainLearning();
    }
    // One round of error-driven blacklist patching (the analyst's
    // first-responder move) using a held-out tuning batch.
    if (use_rules) {
      auto tune = gen.GenerateMany(2000);
      std::vector<data::ProductItem> items;
      for (const auto& li : tune) items.push_back(li.item);
      auto report = bench::RunBatch(pipeline, items);
      std::vector<chimera::Misclassification> errors;
      for (size_t i = 0; i < tune.size(); ++i) {
        if (report.predictions[i].has_value() &&
            *report.predictions[i] != tune[i].label) {
          errors.push_back({tune[i].item, *report.predictions[i],
                            tune[i].label});
        }
      }
      (void)pipeline.AddRules(analyst.WriteBlacklistsForErrors(errors),
                              "analyst");
    }
    auto summary = Evaluate(pipeline, eval_batch);
    size_t wl = pipeline.rule_set().CountActiveOfKind(
        rules::RuleKind::kWhitelist);
    size_t bl = pipeline.rule_set().CountActiveOfKind(
        rules::RuleKind::kBlacklist);
    std::printf("  %-18s %-10.3f %-10.3f %-10.3f %-9zu %-9zu\n", name,
                summary.precision(), summary.recall(), summary.coverage(),
                wl, bl);
    return ConfigResult{summary, wl, bl};
  };

  auto learning_only = run("learning-only", false, true);
  auto rules_only = run("rules-only", true, false);
  auto combined = run("learning+rules", true, true);

  bench::PaperNote("learning-only missed the 92%% precision bar");
  bench::PaperNote(
      "learning+rules: precision 92-93%% over 16M items, recall improved");
  bench::PaperNote("rule mix: 15,058 whitelist / 5,401 blacklist (74/26)");

  // Types handled only by rules (no training data).
  bench::Section("types without training data (the rules-only tail)");
  size_t uncovered = gen.specs().size() - trained_types.size();
  std::printf("  types with no training data: %zu / %zu (%.0f%%)\n",
              uncovered, gen.specs().size(),
              100.0 * uncovered / gen.specs().size());
  // Recall on those types, learning-only vs combined.
  std::vector<data::LabeledItem> uncovered_batch;
  for (const auto& li : eval_batch) {
    if (!trained_types.count(li.label)) uncovered_batch.push_back(li);
  }
  {
    chimera::PipelineConfig pc;
    pc.use_rules = false;
    chimera::ChimeraPipeline p(pc);
    p.AddTrainingData(training);
    p.RetrainLearning();
    auto s = Evaluate(p, uncovered_batch);
    std::printf("  learning-only recall on them:  %.3f\n", s.recall());
  }
  {
    chimera::ChimeraPipeline p;
    make_rules(p);
    p.AddTrainingData(training);
    p.RetrainLearning();
    auto s = Evaluate(p, uncovered_batch);
    std::printf("  learning+rules recall on them: %.3f\n", s.recall());
  }
  bench::PaperNote(
      "~30%% of types were handled primarily by the rule-based and "
      "attribute/value classifiers");

  std::printf("\nshape check: learning-only < 0.92 precision or clearly "
              "below combined;\nrules lift recall, especially on types "
              "without training data; combined\nprecision >= 0.92: %s\n",
              combined.summary.precision() >= 0.92 &&
                      combined.summary.recall() >
                          learning_only.summary.recall()
                  ? "HOLDS"
                  : "CHECK");
  (void)rules_only;
  return 0;
}
