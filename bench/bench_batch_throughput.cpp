// Snapshot-isolated serving core: end-to-end ProcessBatch throughput.
// Measures (a) items/sec of the parallel batch path at 1/2/4/8 worker
// threads, (b) the pre-refactor sequential baseline (a per-item Classify
// loop over the same snapshot), (c) batch latency while a writer
// thread concurrently publishes rule updates — demonstrating that
// AddRules/ScaleDownType never block in-flight classification — and
// (d) the hot-title result cache on a Zipf-skewed repeated-title replay
// (real catalog feeds re-send their head titles constantly), emitting
// BENCH_hot_cache.json with throughput and cache counters, and (e) a
// multi-tenant interleaved replay — a quiet Zipf tenant sharing the
// pipeline with a noisy high-churn neighbour, solo vs shared-pool vs
// isolated per-tenant partitions — emitting BENCH_multi_tenant.json.
// (google-benchmark binary; JSON via --benchmark_format=json.)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/common/random.h"
#include "src/common/stopwatch.h"
#include "src/data/catalog_generator.h"
#include "bench/bench_util.h"

namespace {

using namespace rulekit;

struct Fixture {
  data::GeneratorConfig config;
  std::unique_ptr<data::CatalogGenerator> gen;
  std::vector<data::ProductItem> items;
  std::vector<std::vector<rules::Rule>> per_type_rules;
  std::vector<data::LabeledItem> training;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    f->config.seed = 2015;
    f->config.num_types = 48;
    f->gen = std::make_unique<data::CatalogGenerator>(f->config);
    chimera::SimulatedAnalyst analyst(*f->gen);
    for (const auto& spec : f->gen->specs()) {
      f->per_type_rules.push_back(analyst.WriteRulesForType(spec.name));
    }
    for (auto& li : f->gen->GenerateMany(10000)) {
      f->items.push_back(std::move(li.item));
    }
    data::GeneratorConfig train_config = f->config;
    train_config.seed = f->config.seed + 1;
    data::CatalogGenerator train_gen(train_config);
    f->training = train_gen.GenerateMany(2000);
    return f;
  }();
  return *fixture;
}

std::unique_ptr<chimera::ChimeraPipeline> BuildPipeline(
    size_t batch_threads, bool with_learning = true,
    bool with_cache = false) {
  Fixture& f = GetFixture();
  chimera::PipelineConfig config;
  config.batch_threads = batch_threads;
  config.use_learning = with_learning;
  if (with_cache) {
    config.hot_cache.enabled = true;
    config.hot_cache.capacity = 1 << 16;
    config.hot_cache.admit_after = 2;
  }
  auto pipeline = std::make_unique<chimera::ChimeraPipeline>(config);
  for (const auto& rules : f.per_type_rules) {
    (void)pipeline->AddRules(rules, "bench");
  }
  if (with_learning) {
    pipeline->AddTrainingData(f.training);
    pipeline->RetrainLearning();
  }
  return pipeline;
}

// The pre-refactor sequential path: one Classify() call per item, no
// batch executor, no pool. This is the baseline the parallel batch path
// is compared against.
void BM_PerItemClassifyBaseline(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(/*batch_threads=*/0);
  for (auto _ : state) {
    size_t classified = 0;
    for (const auto& item : f.items) {
      if (bench::ClassifyOne(*pipeline, item).has_value()) ++classified;
    }
    benchmark::DoNotOptimize(classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// ProcessBatch at a given worker-thread count (arg 0; 0 = sequential
// batch path, still using the shared-executor stages).
void BM_ProcessBatch(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    chimera::BatchReport report = bench::RunBatch(*pipeline, f.items);
    benchmark::DoNotOptimize(report.classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// Rules-only variant isolates the regex/voting stages from the learning
// ensemble's feature extraction cost.
void BM_ProcessBatchRulesOnly(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline =
      BuildPipeline(static_cast<size_t>(state.range(0)), false);
  for (auto _ : state) {
    chimera::BatchReport report = bench::RunBatch(*pipeline, f.items);
    benchmark::DoNotOptimize(report.classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// Batches served while a writer thread continuously publishes rule
// updates (AddRules / ScaleDownType / ScaleUpType). With snapshot
// isolation the batch latency should match the quiet-system number —
// updates swap a pointer, they never block readers.
void BM_ProcessBatchWithConcurrentUpdates(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(static_cast<size_t>(state.range(0)));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const auto& specs = f.gen->specs();
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (round % 3) {
        case 0: {
          auto rule = rules::Rule::Whitelist(
              "w" + std::to_string(round),
              "zzznever[a-z]*" + std::to_string(round),
              specs[round % specs.size()].name);
          if (rule.ok()) (void)pipeline->AddRules({*rule}, "writer");
          break;
        }
        case 1:
          pipeline->ScaleDownType(specs[(round / 3) % specs.size()].name,
                                  "writer", "bench");
          break;
        case 2:
          pipeline->ScaleUpType(specs[(round / 3) % specs.size()].name);
          break;
      }
      ++round;
      std::this_thread::yield();
    }
  });
  size_t versions_seen = 0;
  for (auto _ : state) {
    uint64_t before = pipeline->snapshot_version();
    chimera::BatchReport report = bench::RunBatch(*pipeline, f.items);
    benchmark::DoNotOptimize(report.classified);
    versions_seen += pipeline->snapshot_version() - before;
  }
  stop.store(true);
  writer.join();
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  // Publishes that landed while batches were running: > 0 proves
  // updates and serving genuinely overlapped.
  state.counters["updates_during_batches"] =
      static_cast<double>(versions_seen);
}

// The hot-cache steady state: the same batch replayed, so after the
// warm-up iteration nearly every gate-passed item is a cache hit. Arg 0
// toggles the cache (0 = off baseline, 1 = on).
void BM_ProcessBatchRepeatedTitles(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(/*batch_threads=*/0, /*with_learning=*/true,
                                /*with_cache=*/state.range(0) != 0);
  // Two warm-up passes: the first feeds the admission sketch, the second
  // clears admit_after=2 and actually populates the cache.
  (void)bench::RunBatch(*pipeline, f.items);
  (void)bench::RunBatch(*pipeline, f.items);
  for (auto _ : state) {
    chimera::BatchReport report = bench::RunBatch(*pipeline, f.items);
    benchmark::DoNotOptimize(report.classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  if (pipeline->hot_cache() != nullptr) {
    auto counters = pipeline->hot_cache()->TotalCounters();
    state.counters["hit_rate"] =
        counters.lookups == 0
            ? 0.0
            : static_cast<double>(counters.hits) / counters.lookups;
  }
}

// ---- Zipf-skewed repeated-title replay (BENCH_hot_cache.json) ----------
//
// Streams kBatches batches whose titles are drawn Zipf(s) from the 10k
// fixture pool — the head of the distribution repeats across batches,
// like re-sent items from large merchants. The identical stream runs
// through a cache-off and a cache-on pipeline; predictions must be
// byte-identical, and the cache-on run should clear 2x throughput once
// the hot head is admitted.
struct ReplayResult {
  double seconds = 0.0;
  size_t classified = 0;
  engine::HotCacheCounters counters;
  std::vector<std::optional<std::string>> predictions;
};

ReplayResult RunReplay(chimera::ChimeraPipeline& pipeline,
                       const std::vector<std::vector<data::ProductItem>>&
                           batches) {
  ReplayResult result;
  Stopwatch timer;
  for (const auto& batch : batches) {
    chimera::BatchReport report = bench::RunBatch(pipeline, batch);
    result.classified += report.classified;
    result.predictions.insert(result.predictions.end(),
                              report.predictions.begin(),
                              report.predictions.end());
  }
  result.seconds = timer.ElapsedSeconds();
  if (pipeline.hot_cache() != nullptr) {
    result.counters = pipeline.hot_cache()->TotalCounters();
  }
  return result;
}

void RunHotCacheReplay() {
  Fixture& f = GetFixture();
  const size_t kBatches = bench::SmokeN(6, 2);
  const size_t kBatchSize = bench::SmokeN(10000, 500);
  constexpr double kZipfS = 1.2;

  Rng rng(777);
  std::vector<std::vector<data::ProductItem>> batches(kBatches);
  std::vector<bool> seen(f.items.size(), false);
  size_t unique_titles = 0;
  for (auto& batch : batches) {
    batch.reserve(kBatchSize);
    for (size_t i = 0; i < kBatchSize; ++i) {
      size_t idx = static_cast<size_t>(rng.Zipf(f.items.size(), kZipfS));
      if (!seen[idx]) {
        seen[idx] = true;
        ++unique_titles;
      }
      batch.push_back(f.items[idx]);
    }
  }
  const size_t stream_size = kBatches * kBatchSize;
  const double repeat_fraction =
      1.0 - static_cast<double>(unique_titles) / stream_size;

  auto off = BuildPipeline(0, true, false);
  auto on = BuildPipeline(0, true, true);
  ReplayResult off_result = RunReplay(*off, batches);
  ReplayResult on_result = RunReplay(*on, batches);

  size_t mismatches = 0;
  for (size_t i = 0; i < off_result.predictions.size(); ++i) {
    if (off_result.predictions[i] != on_result.predictions[i]) ++mismatches;
  }
  const double off_rate = stream_size / off_result.seconds;
  const double on_rate = stream_size / on_result.seconds;
  const double speedup = off_result.seconds / on_result.seconds;
  const auto& c = on_result.counters;
  const double hit_rate =
      c.lookups == 0 ? 0.0 : static_cast<double>(c.hits) / c.lookups;

  std::printf("\nZipf replay (s=%.2f, %zu batches x %zu items, "
              "%.0f%% repeated titles):\n",
              kZipfS, kBatches, kBatchSize, 100.0 * repeat_fraction);
  std::printf("  cache off: %10.0f items/s\n", off_rate);
  std::printf("  cache on:  %10.0f items/s  (%.2fx, hit rate %.2f)\n",
              on_rate, speedup, hit_rate);
  std::printf("  counters: hits=%llu misses=%llu stale_drops=%llu "
              "promotions=%llu evictions=%llu\n",
              static_cast<unsigned long long>(c.hits),
              static_cast<unsigned long long>(c.misses),
              static_cast<unsigned long long>(c.stale_drops),
              static_cast<unsigned long long>(c.promotions),
              static_cast<unsigned long long>(c.evictions));
  std::printf("  prediction mismatches (cache on vs off): %zu\n",
              mismatches);

  std::ofstream json("BENCH_hot_cache.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_batch_throughput/hot_cache_replay\",\n"
       << "  \"zipf_s\": " << kZipfS << ",\n"
       << "  \"batches\": " << kBatches << ",\n"
       << "  \"batch_size\": " << kBatchSize << ",\n"
       << "  \"stream_size\": " << stream_size << ",\n"
       << "  \"unique_titles\": " << unique_titles << ",\n"
       << "  \"repeat_fraction\": " << repeat_fraction << ",\n"
       << "  \"cache_off_items_per_s\": " << off_rate << ",\n"
       << "  \"cache_on_items_per_s\": " << on_rate << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"hit_rate\": " << hit_rate << ",\n"
       << "  \"hits\": " << c.hits << ",\n"
       << "  \"misses\": " << c.misses << ",\n"
       << "  \"stale_drops\": " << c.stale_drops << ",\n"
       << "  \"promotions\": " << c.promotions << ",\n"
       << "  \"evictions\": " << c.evictions << ",\n"
       << "  \"classified_off\": " << off_result.classified << ",\n"
       << "  \"classified_on\": " << on_result.classified << ",\n"
       << "  \"prediction_mismatches\": " << mismatches << "\n"
       << "}\n";
  std::printf("  wrote BENCH_hot_cache.json\n\n");
}

// ---- Multi-tenant interleaved replay (BENCH_multi_tenant.json) ---------
//
// A quiet tenant replays a Zipf-skewed stream (a stable hot head, the
// cache's best case) while a noisy neighbour interleaves batches of
// never-repeating titles AND commits a rule every step. Three scenarios,
// identical quiet stream:
//   solo      — the quiet tenant alone (its ceiling hit rate)
//   shared    — one shared cache pool + shared rule namespace (the
//               pre-tenancy world): the flood evicts the quiet head and
//               every churn commit stale-drops what survives
//   isolated  — per-tenant partitions and tenant-scoped commits: the
//               noisy tenant can only hurt itself
// The acceptance bar is the quiet tenant's isolated hit rate landing
// within 5% of solo.
void RunMultiTenantReplay() {
  Fixture& f = GetFixture();
  const size_t kSteps = bench::SmokeN(20, 4);
  const size_t kQuietBatch = bench::SmokeN(2500, 200);
  const size_t kNoisyBatch = bench::SmokeN(2000, 200);
  constexpr double kZipfS = 1.2;

  Rng rng(778);
  std::vector<std::vector<data::ProductItem>> quiet(kSteps);
  for (auto& batch : quiet) {
    batch.reserve(kQuietBatch);
    for (size_t i = 0; i < kQuietBatch; ++i) {
      batch.push_back(
          f.items[static_cast<size_t>(rng.Zipf(f.items.size(), kZipfS))]);
    }
  }
  std::vector<std::vector<data::ProductItem>> noisy(kSteps);
  size_t serial = 0;
  for (auto& batch : noisy) {
    batch.reserve(kNoisyBatch);
    for (size_t i = 0; i < kNoisyBatch; ++i, ++serial) {
      // A fixture title with a unique suffix: a fresh cache key every
      // time (nothing ever repeats), but still classifiable by the same
      // rules — the pure-flood worst case for a shared pool.
      data::ProductItem item = f.items[serial % f.items.size()];
      item.title += " lot " + std::to_string(serial);
      batch.push_back(std::move(item));
    }
  }

  struct Scenario {
    double hit_rate = 0.0;
    double p95_ms = 0.0;
    size_t stale_drops = 0;
    size_t classified = 0;
  };
  auto run_scenario = [&](bool with_noisy, bool isolated) {
    chimera::PipelineConfig config;
    config.use_learning = false;
    config.hot_cache.enabled = true;
    config.hot_cache.capacity = 1 << 13;  // << the noisy unique count
    config.hot_cache.admit_after = 1;
    chimera::ChimeraPipeline pipeline(config);
    for (const auto& rules : f.per_type_rules) {
      (void)pipeline.AddRules(rules, "bench");
    }
    const rules::TenantId quiet_id(isolated ? "quiet" : "");
    const rules::TenantId noisy_id(isolated ? "noisy" : "");
    const auto& specs = f.gen->specs();
    Scenario out;
    std::vector<double> latencies;
    size_t hits = 0, lookups = 0;
    for (size_t step = 0; step < kSteps; ++step) {
      if (with_noisy) {
        (void)bench::RunBatch(pipeline, noisy[step], noisy_id);
        auto rule = rules::Rule::Whitelist(
            "churn-" + std::to_string(step),
            "(qqq|noisychurn)[a-z]*" + std::to_string(step),
            specs[step % specs.size()].name);
        if (rule.ok()) (void)pipeline.AddRules({*rule}, "noisy", noisy_id);
      }
      Stopwatch timer;
      chimera::BatchReport report =
          bench::RunBatch(pipeline, quiet[step], quiet_id);
      latencies.push_back(timer.ElapsedSeconds() * 1000.0);
      hits += report.cache_hits;
      lookups += report.cache_hits + report.cache_misses;
      out.stale_drops += report.cache_stale_drops;
      out.classified += report.classified;
    }
    out.hit_rate =
        lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    std::sort(latencies.begin(), latencies.end());
    out.p95_ms =
        latencies[static_cast<size_t>(0.95 * (latencies.size() - 1))];
    return out;
  };

  Scenario solo = run_scenario(false, false);
  Scenario shared = run_scenario(true, false);
  Scenario isolated = run_scenario(true, true);
  const double delta = solo.hit_rate - isolated.hit_rate;

  std::printf("Multi-tenant replay (quiet Zipf s=%.2f, %zu steps x %zu "
              "items vs noisy %zu-item flood + 1 rule commit/step):\n",
              kZipfS, kSteps, kQuietBatch, kNoisyBatch);
  std::printf("  quiet solo:     hit rate %.3f, p95 %7.2f ms\n",
              solo.hit_rate, solo.p95_ms);
  std::printf("  shared pool:    hit rate %.3f, p95 %7.2f ms, "
              "stale drops %zu\n",
              shared.hit_rate, shared.p95_ms, shared.stale_drops);
  std::printf("  isolated:       hit rate %.3f, p95 %7.2f ms, "
              "stale drops %zu\n",
              isolated.hit_rate, isolated.p95_ms, isolated.stale_drops);
  std::printf("  isolation delta vs solo: %.3f (acceptance: < 0.05 of "
              "solo)\n",
              delta);

  std::ofstream json("BENCH_multi_tenant.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_batch_throughput/multi_tenant_replay\",\n"
       << "  \"zipf_s\": " << kZipfS << ",\n"
       << "  \"steps\": " << kSteps << ",\n"
       << "  \"quiet_batch_size\": " << kQuietBatch << ",\n"
       << "  \"noisy_batch_size\": " << kNoisyBatch << ",\n"
       << "  \"solo_hit_rate\": " << solo.hit_rate << ",\n"
       << "  \"solo_p95_ms\": " << solo.p95_ms << ",\n"
       << "  \"shared_hit_rate\": " << shared.hit_rate << ",\n"
       << "  \"shared_p95_ms\": " << shared.p95_ms << ",\n"
       << "  \"shared_stale_drops\": " << shared.stale_drops << ",\n"
       << "  \"isolated_hit_rate\": " << isolated.hit_rate << ",\n"
       << "  \"isolated_p95_ms\": " << isolated.p95_ms << ",\n"
       << "  \"isolated_stale_drops\": " << isolated.stale_drops << ",\n"
       << "  \"isolated_delta_vs_solo\": " << delta << ",\n"
       << "  \"quiet_classified_solo\": " << solo.classified << ",\n"
       << "  \"quiet_classified_isolated\": " << isolated.classified << "\n"
       << "}\n";
  std::printf("  wrote BENCH_multi_tenant.json\n\n");
}

BENCHMARK(BM_PerItemClassifyBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatchRepeatedTitles)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatchRulesOnly)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatchWithConcurrentUpdates)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=========================================================\n");
  std::printf("bench_batch_throughput — snapshot-isolated serving core\n");
  std::printf("ProcessBatch items/s vs worker threads (10k-item batch,\n");
  std::printf("48 types, rules + trained ensemble), against the per-item\n");
  std::printf("Classify baseline; plus serving under continuous rule\n");
  std::printf("updates (snapshot swaps never block batches).\n");
  std::printf("hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());
  std::printf("=========================================================\n");
  argv = rulekit::bench::SmokeBenchmarkArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  RunHotCacheReplay();
  RunMultiTenantReplay();
  return 0;
}
