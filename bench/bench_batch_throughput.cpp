// Snapshot-isolated serving core: end-to-end ProcessBatch throughput.
// Measures (a) items/sec of the parallel batch path at 1/2/4/8 worker
// threads, (b) the pre-refactor sequential baseline (a per-item Classify
// loop over the same snapshot), and (c) batch latency while a writer
// thread concurrently publishes rule updates — demonstrating that
// AddRules/ScaleDownType never block in-flight classification.
// (google-benchmark binary; JSON via --benchmark_format=json.)

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/chimera/analyst.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"

namespace {

using namespace rulekit;

struct Fixture {
  data::GeneratorConfig config;
  std::unique_ptr<data::CatalogGenerator> gen;
  std::vector<data::ProductItem> items;
  std::vector<std::vector<rules::Rule>> per_type_rules;
  std::vector<data::LabeledItem> training;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    f->config.seed = 2015;
    f->config.num_types = 48;
    f->gen = std::make_unique<data::CatalogGenerator>(f->config);
    chimera::SimulatedAnalyst analyst(*f->gen);
    for (const auto& spec : f->gen->specs()) {
      f->per_type_rules.push_back(analyst.WriteRulesForType(spec.name));
    }
    for (auto& li : f->gen->GenerateMany(10000)) {
      f->items.push_back(std::move(li.item));
    }
    data::GeneratorConfig train_config = f->config;
    train_config.seed = f->config.seed + 1;
    data::CatalogGenerator train_gen(train_config);
    f->training = train_gen.GenerateMany(2000);
    return f;
  }();
  return *fixture;
}

std::unique_ptr<chimera::ChimeraPipeline> BuildPipeline(
    size_t batch_threads, bool with_learning = true) {
  Fixture& f = GetFixture();
  chimera::PipelineConfig config;
  config.batch_threads = batch_threads;
  config.use_learning = with_learning;
  auto pipeline = std::make_unique<chimera::ChimeraPipeline>(config);
  for (const auto& rules : f.per_type_rules) {
    (void)pipeline->AddRules(rules, "bench");
  }
  if (with_learning) {
    pipeline->AddTrainingData(f.training);
    pipeline->RetrainLearning();
  }
  return pipeline;
}

// The pre-refactor sequential path: one Classify() call per item, no
// batch executor, no pool. This is the baseline the parallel batch path
// is compared against.
void BM_PerItemClassifyBaseline(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(/*batch_threads=*/0);
  for (auto _ : state) {
    size_t classified = 0;
    for (const auto& item : f.items) {
      if (pipeline->Classify(item).has_value()) ++classified;
    }
    benchmark::DoNotOptimize(classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// ProcessBatch at a given worker-thread count (arg 0; 0 = sequential
// batch path, still using the shared-executor stages).
void BM_ProcessBatch(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    chimera::BatchReport report = pipeline->ProcessBatch(f.items);
    benchmark::DoNotOptimize(report.classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// Rules-only variant isolates the regex/voting stages from the learning
// ensemble's feature extraction cost.
void BM_ProcessBatchRulesOnly(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline =
      BuildPipeline(static_cast<size_t>(state.range(0)), false);
  for (auto _ : state) {
    chimera::BatchReport report = pipeline->ProcessBatch(f.items);
    benchmark::DoNotOptimize(report.classified);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

// Batches served while a writer thread continuously publishes rule
// updates (AddRules / ScaleDownType / ScaleUpType). With snapshot
// isolation the batch latency should match the quiet-system number —
// updates swap a pointer, they never block readers.
void BM_ProcessBatchWithConcurrentUpdates(benchmark::State& state) {
  Fixture& f = GetFixture();
  auto pipeline = BuildPipeline(static_cast<size_t>(state.range(0)));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const auto& specs = f.gen->specs();
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      switch (round % 3) {
        case 0: {
          auto rule = rules::Rule::Whitelist(
              "w" + std::to_string(round),
              "zzznever[a-z]*" + std::to_string(round),
              specs[round % specs.size()].name);
          if (rule.ok()) (void)pipeline->AddRules({*rule}, "writer");
          break;
        }
        case 1:
          pipeline->ScaleDownType(specs[(round / 3) % specs.size()].name,
                                  "writer", "bench");
          break;
        case 2:
          pipeline->ScaleUpType(specs[(round / 3) % specs.size()].name);
          break;
      }
      ++round;
      std::this_thread::yield();
    }
  });
  size_t versions_seen = 0;
  for (auto _ : state) {
    uint64_t before = pipeline->snapshot_version();
    chimera::BatchReport report = pipeline->ProcessBatch(f.items);
    benchmark::DoNotOptimize(report.classified);
    versions_seen += pipeline->snapshot_version() - before;
  }
  stop.store(true);
  writer.join();
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(f.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
  // Publishes that landed while batches were running: > 0 proves
  // updates and serving genuinely overlapped.
  state.counters["updates_during_batches"] =
      static_cast<double>(versions_seen);
}

BENCHMARK(BM_PerItemClassifyBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatchRulesOnly)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ProcessBatchWithConcurrentUpdates)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=========================================================\n");
  std::printf("bench_batch_throughput — snapshot-isolated serving core\n");
  std::printf("ProcessBatch items/s vs worker threads (10k-item batch,\n");
  std::printf("48 types, rules + trained ensemble), against the per-item\n");
  std::printf("Classify baseline; plus serving under continuous rule\n");
  std::printf("updates (snapshot swaps never block batches).\n");
  std::printf("hardware_concurrency=%u\n",
              std::thread::hardware_concurrency());
  std::printf("=========================================================\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
