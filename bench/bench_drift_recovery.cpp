// The self-healing claim, measured: a streaming event workload drifts
// (kVocabulary: signature keywords vanish, a stale ensemble confidently
// mislabels), and detection-to-recovery is timed in windows for two
// arms of the same seeded timeline — WITH the DriftResponder (alarms
// convert to one automatic retrain; the pipeline recovers with no
// operator call) and WITHOUT it (the baseline never recovers inside the
// horizon, because nothing ever retrains). The thrash-freedom contract
// rides along: at most one retrain for the whole drift episode under the
// default hysteresis/cooldown policy. Writes BENCH_drift_recovery.json.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/chimera/stream_window.h"
#include "src/data/event_stream.h"
#include "src/maint/drift_responder.h"

namespace {
using namespace rulekit;

/// One window of the experiment timeline, as reported.
struct WindowRow {
  size_t index = 0;
  double precision = 0.0;      // sampled Wilson point estimate
  double true_accuracy = 0.0;  // ground truth over classified items
  double coverage = 0.0;
  bool alarm = false;
  bool fired = false;  // the responder fired during this window
};

/// One arm's summary.
struct ArmResult {
  std::string name;
  std::vector<WindowRow> rows;
  int drift_window = -1;      // window the drift was injected before
  int alarm_window = -1;      // first degraded-alarm window
  int fire_window = -1;       // window whose evaluation fired the retrain
  int recovered_window = -1;  // first post-drift window back at/above threshold
  size_t retrains = 0;
  double final_precision = 0.0;
  bool recovered = false;
};

ArmResult RunArm(bool autoheal, size_t warmup_lines, size_t window_lines,
                 size_t healthy_windows, size_t horizon_windows) {
  ArmResult arm;
  arm.name = autoheal ? "with_responder" : "no_responder";

  data::EventStreamGenerator stream;
  chimera::ChimeraPipeline pipeline;
  auto status =
      pipeline.AddRules(chimera::WriteEventRules(stream), "analyst");
  if (!status.ok()) {
    std::fprintf(stderr, "rule load failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  pipeline.AddTrainingData(stream.GenerateMany(warmup_lines));
  pipeline.RetrainLearning();

  chimera::QualityMonitor monitor;  // 0.92 degradation threshold
  chimera::StreamWindowOptions options;
  options.sample_size = 64;
  chimera::StreamWindowRunner runner(pipeline, monitor, options);
  maint::DriftResponder responder(pipeline, monitor, {});  // default policy

  const double threshold = monitor.threshold();
  const size_t total_windows = healthy_windows + horizon_windows;
  for (size_t w = 0; w < total_windows; ++w) {
    if (w == healthy_windows) {
      // Drift: half the type universe shifts vocabulary mid-stream.
      data::EventDriftOptions drift;
      drift.kind = data::EventDriftKind::kVocabulary;
      drift.drift_share = 0.9;
      stream.InjectDrift(drift, stream.specs().size() / 2);
      arm.drift_window = static_cast<int>(w);
    }

    chimera::WindowResult result =
        runner.RunWindow(stream.GenerateMany(window_lines));
    if (!result.status.ok()) {
      std::fprintf(stderr, "window %zu failed: %s\n", w,
                   result.status.ToString().c_str());
      std::exit(1);
    }

    WindowRow row;
    row.index = w;
    row.precision = result.quality.precision.estimate;
    row.true_accuracy = result.true_accuracy;
    row.coverage = result.coverage;
    row.alarm = monitor.DegradationAlarm();
    if (row.alarm && arm.alarm_window < 0) {
      arm.alarm_window = static_cast<int>(w);
    }

    if (autoheal) {
      size_t before = responder.fires();
      responder.EvaluateNow();
      if (responder.fires() > before) {
        row.fired = true;
        arm.fire_window = static_cast<int>(w);
        // Let the automatic retrain land before the stream moves on (the
        // trainer is asynchronous; the bench holds the timeline still so
        // recovery is attributable to a window, not a thread race).
        auto retrain = responder.LastRetrain("");
        if (retrain.has_value()) retrain->wait();
      }
    }

    if (arm.drift_window >= 0 && arm.recovered_window < 0 &&
        static_cast<int>(w) > arm.drift_window &&
        row.precision >= threshold &&
        (!autoheal || arm.fire_window >= 0)) {
      arm.recovered_window = static_cast<int>(w);
    }
    arm.final_precision = row.precision;
    arm.rows.push_back(row);
  }
  arm.retrains = responder.fires();
  arm.recovered =
      arm.recovered_window >= 0 &&
      arm.rows.back().precision >= threshold;
  return arm;
}

void PrintArm(const ArmResult& arm) {
  bench::Section(arm.name.c_str());
  for (const WindowRow& row : arm.rows) {
    std::printf("  w%02zu  precision=%.3f  truth=%.3f  coverage=%.2f%s%s\n",
                row.index, row.precision, row.true_accuracy, row.coverage,
                row.alarm ? "  ALARM" : "",
                row.fired ? "  -> RETRAIN FIRED" : "");
  }
  std::printf("  drift at w%d, first alarm w%d, fire w%d, recovered w%d, "
              "retrains=%zu, final precision %.3f\n",
              arm.drift_window, arm.alarm_window, arm.fire_window,
              arm.recovered_window, arm.retrains, arm.final_precision);
}

void JsonArm(std::ofstream& json, const ArmResult& arm, bool last) {
  json << "  \"" << arm.name << "\": {\n"
       << "    \"drift_window\": " << arm.drift_window << ",\n"
       << "    \"alarm_window\": " << arm.alarm_window << ",\n"
       << "    \"fire_window\": " << arm.fire_window << ",\n"
       << "    \"recovered_window\": " << arm.recovered_window << ",\n"
       << "    \"windows_drift_to_alarm\": "
       << (arm.alarm_window >= 0 ? arm.alarm_window - arm.drift_window : -1)
       << ",\n"
       << "    \"windows_alarm_to_recovery\": "
       << (arm.recovered_window >= 0 && arm.alarm_window >= 0
               ? arm.recovered_window - arm.alarm_window
               : -1)
       << ",\n"
       << "    \"retrains\": " << arm.retrains << ",\n"
       << "    \"final_precision\": " << arm.final_precision << ",\n"
       << "    \"recovered\": " << (arm.recovered ? "true" : "false") << "\n"
       << "  }" << (last ? "\n" : ",\n");
}

}  // namespace

int main() {
  bench::Header(
      "drift detection-to-recovery: self-healing retrain vs no responder",
      "SS2.2 req. 3 (detect quality problems quickly) + SS4 rule "
      "maintenance, closed-loop");

  const size_t warmup_lines = bench::SmokeN(400, 60);
  const size_t window_lines = bench::SmokeN(150, 40);
  const size_t healthy_windows = bench::SmokeN(3, 1);
  const size_t horizon_windows = bench::SmokeN(12, 3);
  bench::PaperNote(
      "the paper's loop needs an analyst paged on the monitoring alarm; "
      "here the responder closes it automatically");

  ArmResult healed = RunArm(true, warmup_lines, window_lines,
                            healthy_windows, horizon_windows);
  ArmResult baseline = RunArm(false, warmup_lines, window_lines,
                              healthy_windows, horizon_windows);
  PrintArm(healed);
  PrintArm(baseline);

  const bool smoke = bench::SmokeMode();
  const bool thrash_free = healed.retrains <= 1;
  bench::Section("claims");
  std::printf("  responder recovered without an operator: %s\n",
              healed.recovered ? "yes" : "NO");
  std::printf("  at most one retrain for the episode:     %s (%zu)\n",
              thrash_free ? "yes" : "NO", healed.retrains);
  std::printf("  baseline never recovered in horizon:     %s\n",
              !baseline.recovered ? "yes" : "NO");

  std::ofstream json("BENCH_drift_recovery.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_drift_recovery\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"window_lines\": " << window_lines << ",\n"
       << "  \"horizon_windows\": " << horizon_windows << ",\n";
  JsonArm(json, healed, false);
  JsonArm(json, baseline, false);
  json << "  \"claims\": {\n"
       << "    \"responder_recovered\": "
       << (healed.recovered ? "true" : "false") << ",\n"
       << "    \"at_most_one_retrain\": "
       << (thrash_free ? "true" : "false") << ",\n"
       << "    \"baseline_never_recovered\": "
       << (!baseline.recovered ? "true" : "false") << "\n"
       << "  }\n"
       << "}\n";
  std::printf("\nwrote BENCH_drift_recovery.json\n");

  // Smoke windows are too small for the statistical claims; plain runs
  // enforce them with the exit status so CI catches a regressed loop.
  if (!smoke && (!healed.recovered || !thrash_free || baseline.recovered)) {
    return 1;
  }
  return 0;
}
