// §4 "Rule Execution and Optimization": scaling the execution of
// thousands-to-tens-of-thousands of rules over a batch. Compares the
// full-scan baseline, the literal-prefilter rule index, and parallel
// execution, plus the data index for the rule-development loop.
// (google-benchmark binary; also prints an index-stats table first.)

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/data/catalog_generator.h"
#include "src/engine/data_index.h"
#include "src/engine/executor.h"
#include "src/rules/rule.h"
#include "src/rules/rule_set.h"

namespace {

using namespace rulekit;

// Builds a rule set of roughly `target` whitelist rules from the catalog
// vocabulary: qualifier x noun patterns across all types, then qualifier
// pair patterns, mirroring what analysts + the miner accumulate.
std::shared_ptr<rules::RuleSet> BuildRules(data::CatalogGenerator& gen,
                                           size_t target) {
  auto set = std::make_shared<rules::RuleSet>();
  size_t id = 0;
  auto add = [&](const std::string& pattern, const std::string& type) {
    if (set->size() >= target) return;
    auto rule = rules::Rule::Whitelist("r" + std::to_string(id++), pattern,
                                       type);
    if (rule.ok()) (void)set->Add(std::move(rule).value());
  };
  for (int round = 0; set->size() < target && round < 64; ++round) {
    for (const auto& spec : gen.specs()) {
      if (spec.head_nouns.empty() || spec.qualifiers.empty()) continue;
      const std::string& noun = spec.head_nouns[0];
      if (round == 0) {
        add(RegexEscape(noun) + "s?", spec.name);
      } else if (static_cast<size_t>(round) <= spec.qualifiers.size()) {
        add(RegexEscape(spec.qualifiers[round - 1]) + ".*" +
                RegexEscape(noun) + "s?",
            spec.name);
      } else {
        size_t a = (round - 1) % spec.qualifiers.size();
        size_t b = (round / 2) % spec.qualifiers.size();
        add(RegexEscape(spec.qualifiers[a]) + ".*" +
                RegexEscape(spec.qualifiers[b]) + ".*" +
                RegexEscape(noun) + "s?",
            spec.name);
      }
    }
  }
  return set;
}

struct Fixture {
  std::shared_ptr<rules::RuleSet> rules;
  std::vector<data::ProductItem> items;
};

Fixture& GetFixture(size_t num_rules) {
  static std::map<size_t, Fixture>* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(num_rules);
  if (it != cache->end()) return it->second;
  data::GeneratorConfig config;
  config.seed = 1004;
  config.num_types = 400;  // vocabulary volume for many distinct rules
  data::CatalogGenerator gen(config);
  Fixture fixture;
  fixture.rules = BuildRules(gen, num_rules);
  for (auto& li : gen.GenerateMany(bench::SmokeN(1000, 200))) {
    fixture.items.push_back(std::move(li.item));
  }
  return cache->emplace(num_rules, std::move(fixture)).first->second;
}

void BM_FullScan(benchmark::State& state) {
  Fixture& fixture = GetFixture(static_cast<size_t>(state.range(0)));
  engine::RuleExecutor executor(*fixture.rules, {.use_index = false});
  size_t evals = 0;
  for (auto _ : state) {
    auto result = executor.Execute(fixture.items);
    evals = result.stats.rule_evaluations;
    benchmark::DoNotOptimize(result.matches_per_item);
  }
  state.counters["rule_evals"] = static_cast<double>(evals);
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(fixture.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_Indexed(benchmark::State& state) {
  Fixture& fixture = GetFixture(static_cast<size_t>(state.range(0)));
  engine::RuleExecutor executor(*fixture.rules, {.use_index = true});
  size_t evals = 0;
  for (auto _ : state) {
    auto result = executor.Execute(fixture.items);
    evals = result.stats.rule_evaluations;
    benchmark::DoNotOptimize(result.matches_per_item);
  }
  state.counters["rule_evals"] = static_cast<double>(evals);
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(fixture.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_IndexedParallel(benchmark::State& state) {
  Fixture& fixture = GetFixture(static_cast<size_t>(state.range(0)));
  ThreadPool pool(static_cast<size_t>(state.range(1)));
  engine::RuleExecutor executor(*fixture.rules,
                                {.use_index = true, .pool = &pool});
  for (auto _ : state) {
    auto result = executor.Execute(fixture.items);
    benchmark::DoNotOptimize(result.matches_per_item);
  }
  state.counters["items/s"] = benchmark::Counter(
      static_cast<double>(fixture.items.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_DataIndexRuleDev(benchmark::State& state) {
  // The §4 rule-development loop: evaluate one evolving rule repeatedly
  // over a dev set D, with and without the trigram data index.
  Fixture& fixture = GetFixture(1000);
  std::vector<std::string> titles;
  for (const auto& item : fixture.items) titles.push_back(item.title);
  engine::DataIndex index;
  index.Build(titles);
  auto re = regex::Regex::CompileCaseFolded("(motor|engine) oils?");
  bool use_index = state.range(0) != 0;
  for (auto _ : state) {
    if (use_index) {
      auto matches = index.MatchingTitles(*re);
      benchmark::DoNotOptimize(matches);
    } else {
      std::vector<size_t> matches;
      for (size_t i = 0; i < titles.size(); ++i) {
        if (re->PartialMatch(ToLowerAscii(titles[i]))) matches.push_back(i);
      }
      benchmark::DoNotOptimize(matches);
    }
  }
}

BENCHMARK(BM_FullScan)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Indexed)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IndexedParallel)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DataIndexRuleDev)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=========================================================\n");
  std::printf("bench_rule_execution — §4 Rule Execution and Optimization\n");
  std::printf("index vs full scan over 1000 items; [paper]: executing tens\n");
  std::printf("of thousands of rules needs indexing and parallelism.\n");
  std::printf("=========================================================\n");
  for (size_t n : {1000u, 5000u, 20000u}) {
    Fixture& fixture = GetFixture(n);
    engine::RuleExecutor indexed(*fixture.rules, {.use_index = true});
    std::printf("rules=%-6zu indexed=%zu unindexed=%zu literals=%zu\n",
                fixture.rules->size(), indexed.index_stats().indexed_rules,
                indexed.index_stats().unindexed_rules,
                indexed.index_stats().literals);
  }
  argv = rulekit::bench::SmokeBenchmarkArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
