#ifndef RULEKIT_BENCH_BENCH_UTIL_H_
#define RULEKIT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries. Each bench
// prints the paper's reported numbers alongside the measured ones; the
// reproduction target is the *shape* (who wins, directions, ratios), not
// absolute magnitudes — see EXPERIMENTS.md.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"

namespace rulekit::bench {

/// Bench-side conveniences over ChimeraPipeline::Classify(ClassifyRequest)
/// mirroring the deprecated ProcessBatch / per-item Classify shapes, so
/// the experiment binaries measure the one real entry point without
/// request-building noise at every call site.

inline chimera::BatchReport RunBatch(
    const chimera::ChimeraPipeline& pipeline,
    const std::vector<data::ProductItem>& items,
    const rules::TenantId& tenant = {}) {
  chimera::ClassifyRequest request;
  request.tenant = tenant;
  request.items = items;
  return pipeline.Classify(request).report;
}

inline std::optional<std::string> ClassifyOne(
    const chimera::ChimeraPipeline& pipeline, const data::ProductItem& item,
    const rules::TenantId& tenant = {}) {
  chimera::ClassifyRequest request;
  request.tenant = tenant;
  request.items = std::span<const data::ProductItem>(&item, 1);
  return pipeline.Classify(request).report.predictions[0];
}

/// Smoke mode (RULEKIT_BENCH_SMOKE=1): every bench shrinks its iteration
/// budget to a did-it-run sanity size — `scripts/check.sh --bench-smoke`
/// exercises all binaries end to end in seconds instead of minutes. The
/// measured numbers are meaningless in smoke mode; only exit status and
/// output plumbing are under test.
inline bool SmokeMode() {
  const char* env = std::getenv("RULEKIT_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/// `full` normally, `smoke` under RULEKIT_BENCH_SMOKE.
inline size_t SmokeN(size_t full, size_t smoke) {
  return SmokeMode() ? smoke : full;
}

/// For google-benchmark binaries: in smoke mode, returns an argv with
/// --benchmark_min_time=0.01 appended (and bumps *argc), so every
/// registered timer runs a token repetition instead of its full budget.
/// Pass the result to benchmark::Initialize. A no-op outside smoke mode.
inline char** SmokeBenchmarkArgs(int* argc, char** argv) {
  if (!SmokeMode()) return argv;
  static std::vector<char*> patched;
  static char flag[] = "--benchmark_min_time=0.01";
  patched.assign(argv, argv + *argc);
  patched.push_back(flag);
  patched.push_back(nullptr);
  *argc += 1;
  return patched.data();
}

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==============================================================="
              "=========\n");
}

inline void Section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline void PaperNote(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

}  // namespace rulekit::bench

#endif  // RULEKIT_BENCH_BENCH_UTIL_H_
