#ifndef RULEKIT_BENCH_BENCH_UTIL_H_
#define RULEKIT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries. Each bench
// prints the paper's reported numbers alongside the measured ones; the
// reproduction target is the *shape* (who wins, directions, ratios), not
// absolute magnitudes — see EXPERIMENTS.md.

#include <cstdarg>
#include <cstdio>
#include <string>

namespace rulekit::bench {

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==============================================================="
              "=========\n");
}

inline void Section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline void PaperNote(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

}  // namespace rulekit::bench

#endif  // RULEKIT_BENCH_BENCH_UTIL_H_
