#ifndef RULEKIT_BENCH_BENCH_UTIL_H_
#define RULEKIT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries. Each bench
// prints the paper's reported numbers alongside the measured ones; the
// reproduction target is the *shape* (who wins, directions, ratios), not
// absolute magnitudes — see EXPERIMENTS.md.

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/chimera/pipeline.h"
#include "src/chimera/request.h"

namespace rulekit::bench {

/// Bench-side conveniences over ChimeraPipeline::Classify(ClassifyRequest)
/// mirroring the deprecated ProcessBatch / per-item Classify shapes, so
/// the experiment binaries measure the one real entry point without
/// request-building noise at every call site.

inline chimera::BatchReport RunBatch(
    const chimera::ChimeraPipeline& pipeline,
    const std::vector<data::ProductItem>& items,
    const rules::TenantId& tenant = {}) {
  chimera::ClassifyRequest request;
  request.tenant = tenant;
  request.items = items;
  return pipeline.Classify(request).report;
}

inline std::optional<std::string> ClassifyOne(
    const chimera::ChimeraPipeline& pipeline, const data::ProductItem& item,
    const rules::TenantId& tenant = {}) {
  chimera::ClassifyRequest request;
  request.tenant = tenant;
  request.items = std::span<const data::ProductItem>(&item, 1);
  return pipeline.Classify(request).report.predictions[0];
}

inline void Header(const char* experiment, const char* paper_artifact) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_artifact);
  std::printf("==============================================================="
              "=========\n");
}

inline void Section(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

inline void PaperNote(const char* fmt, ...) {
  std::printf("  [paper] ");
  va_list ap;
  va_start(ap, fmt);
  std::vprintf(fmt, ap);
  va_end(ap);
  std::printf("\n");
}

}  // namespace rulekit::bench

#endif  // RULEKIT_BENCH_BENCH_UTIL_H_
