// §4 "Rule Execution and Optimization" + §5.2 scoring: the offline
// rule-set optimization pass over a large deployed rule base. Builds a
// ~20K-rule corpus with planted redundancy (subsumed qualifier variants,
// equivalent duplicates, co-firing merge pairs, zero-coverage dead
// rules), plans an optimization against a reference corpus, applies it
// through the pipeline's transactional API, and measures executed
// rules-per-item and end-to-end batch throughput before/after — the
// claim under test is a >= 20% reduction with byte-identical
// classifications. Writes BENCH_optimizer.json next to the binary.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chimera/pipeline.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/catalog_generator.h"
#include "src/maint/optimizer.h"
#include "src/rules/rule.h"

namespace {
using namespace rulekit;

const size_t kTargetRules = rulekit::bench::SmokeN(20000, 800);
constexpr size_t kNumTypes = 200;
const size_t kCorpusItems = rulekit::bench::SmokeN(8000, 500);
const size_t kDeadRules = rulekit::bench::SmokeN(500, 50);
constexpr size_t kMergeTypes = 20;
const int kThroughputReps = static_cast<int>(rulekit::bench::SmokeN(3, 1));

/// The planted rule base: per type a broad noun rule, an equivalent
/// duplicate, single-qualifier refinements (each subsumed by the broad
/// rule), and qualifier-pair refinements (subsumed twice over) — the
/// shape an analyst-plus-miner rule base converges to (§4). Merge types
/// additionally carry a co-firing token pair, and `kDeadRules` rules
/// match nothing in the catalog at low confidence (the §5.2 prune bait).
std::vector<rules::Rule> BuildRuleBase(
    const std::vector<data::TypeSpec>& specs,
    const std::set<std::string>& merge_types) {
  std::vector<rules::Rule> out;
  out.reserve(kTargetRules + kDeadRules + 2 * kMergeTypes);
  auto add = [&](std::string id, const std::string& pattern,
                 const std::string& type, double confidence = 1.0) {
    auto rule = rules::Rule::Whitelist(std::move(id), pattern, type);
    if (!rule.ok()) return;
    rule->metadata().confidence = confidence;
    out.push_back(std::move(rule).value());
  };

  for (size_t round = 0; out.size() < kTargetRules; ++round) {
    const size_t before = out.size();
    for (size_t s = 0; s < specs.size() && out.size() < kTargetRules; ++s) {
      const auto& spec = specs[s];
      if (spec.head_nouns.empty() || spec.qualifiers.empty()) continue;
      const std::string noun = RegexEscape(spec.head_nouns[0]);
      const std::string tag = "t" + std::to_string(s);
      if (round == 0) {
        // Every third type gets no broad covering rule: its single-
        // qualifier rules survive the plan, so the corpus-aware
        // re-bucketing stage has multi-literal survivors to move.
        if (s % 3 == 2) continue;
        add(tag + "-broad", noun, spec.name);
        add(tag + "-dup", noun, spec.name);  // equivalent twin
      } else if (round <= spec.qualifiers.size()) {
        add(tag + "-q" + std::to_string(round - 1),
            RegexEscape(spec.qualifiers[round - 1]) + ".*" + noun, spec.name);
      } else {
        const size_t a = (round - 1) % spec.qualifiers.size();
        const size_t b = (round / 2) % spec.qualifiers.size();
        add(tag + "-p" + std::to_string(round),
            RegexEscape(spec.qualifiers[a]) + ".*" +
                RegexEscape(spec.qualifiers[b]) + ".*" + noun,
            spec.name);
      }
    }
    if (out.size() == before) break;  // vocabulary exhausted
  }

  // Co-firing merge pairs: disjoint planted tokens that always appear
  // together in the corpus (jaccard 1.0, equal confidence, neither
  // subsumes the other).
  size_t merge_index = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    if (merge_types.count(specs[s].name) == 0) continue;
    const std::string k = std::to_string(merge_index++);
    add("t" + std::to_string(s) + "-mrga", "mrgalpha" + k, specs[s].name);
    add("t" + std::to_string(s) + "-mrgb", "mrgbeta" + k, specs[s].name);
  }

  // Dead rules: zero corpus coverage at sub-ceiling confidence.
  for (size_t i = 0; i < kDeadRules; ++i) {
    add("dead-" + std::to_string(i), "deadtok" + std::to_string(i),
        specs[i % specs.size()].name, 0.5);
  }
  return out;
}

struct Measurement {
  double epi = 0.0;        // executed rules per rule-executed item
  double items_per_s = 0.0;
  chimera::BatchReport report;
};

Measurement Measure(const chimera::ChimeraPipeline& pipeline,
                    const std::vector<data::ProductItem>& corpus) {
  Measurement m;
  Stopwatch timer;
  for (int rep = 0; rep < kThroughputReps; ++rep) {
    m.report = bench::RunBatch(pipeline, corpus);
  }
  const double seconds = timer.ElapsedSeconds();
  m.epi = m.report.ExecutedRulesPerItem();
  m.items_per_s =
      seconds == 0.0 ? 0.0 : kThroughputReps * corpus.size() / seconds;
  return m;
}

size_t CountMismatches(const chimera::BatchReport& a,
                       const chimera::BatchReport& b) {
  size_t mismatches = 0;
  for (size_t i = 0; i < a.predictions.size(); ++i) {
    if (a.predictions[i] != b.predictions[i]) ++mismatches;
  }
  return mismatches;
}

}  // namespace

int main() {
  bench::Header("bench_optimizer",
                "§4 rule execution/maintenance + §5.2 scoring: offline "
                "rule-set optimization pass");

  // ---- fixture ------------------------------------------------------------
  data::GeneratorConfig config;
  config.seed = 1013;
  config.num_types = kNumTypes;
  data::CatalogGenerator gen(config);

  std::set<std::string> merge_types;
  std::map<std::string, std::string> merge_suffix;
  for (const auto& spec : gen.specs()) {
    if (merge_types.size() >= kMergeTypes) break;
    if (spec.head_nouns.empty() || spec.qualifiers.empty()) continue;
    merge_suffix[spec.name] =
        " mrgalpha" + std::to_string(merge_types.size()) + " mrgbeta" +
        std::to_string(merge_types.size());
    merge_types.insert(spec.name);
  }

  auto rule_base = BuildRuleBase(gen.specs(), merge_types);
  std::vector<data::ProductItem> corpus;
  corpus.reserve(kCorpusItems);
  size_t augmented = 0;
  for (auto& li : gen.GenerateMany(kCorpusItems)) {
    auto it = merge_suffix.find(li.label);
    // Half of each merge type's titles carry the co-firing pair, so the
    // pair's mutual jaccard (1.0) beats its jaccard against the type's
    // broad rule (~0.5) and the planner merges the right rules.
    if (it != merge_suffix.end() && (augmented++ % 2) == 0) {
      li.item.title += it->second;
    }
    corpus.push_back(std::move(li.item));
  }
  std::printf("  %zu rules over %zu types, %zu corpus items\n",
              rule_base.size(), gen.specs().size(), corpus.size());

  // ---- baseline -----------------------------------------------------------
  bench::Section("baseline batch (structural index, full rule base)");
  chimera::ChimeraPipeline pipeline;
  {
    Stopwatch timer;
    if (!pipeline.AddRules(rule_base, "bench").ok()) {
      std::printf("  FATAL: AddRules failed\n");
      return 1;
    }
    std::printf("  publish %.0f ms\n", timer.ElapsedMillis());
  }
  auto before = Measure(pipeline, corpus);
  std::printf("  executed rules/item %.2f, %.0f items/s (coverage %.2f)\n",
              before.epi, before.items_per_s, before.report.coverage());

  // ---- plan ---------------------------------------------------------------
  bench::Section("PlanOptimization");
  maint::OptimizerOptions options;
  options.merge_min_jaccard = 0.9;
  Stopwatch plan_timer;
  auto plan = maint::PlanOptimization(pipeline.rule_set(), corpus, options);
  const double plan_seconds = plan_timer.ElapsedSeconds();
  std::printf("  %s\n", plan.Summary().c_str());
  std::printf("  planned in %.2fs\n", plan_seconds);
  bench::PaperNote("the paper reports rule bases of 10K+ rules where "
                   "subsumed/overlapping/low-value rules accumulate over "
                   "years of maintenance (§4).");

  // ---- apply --------------------------------------------------------------
  bench::Section("ApplyOptimizationPlan (transactional, via pipeline)");
  Stopwatch apply_timer;
  Status applied = pipeline.Mutate(
      "optimizer", [&](rules::RuleTransaction& txn) {
        return maint::StageOptimizationPlan(txn, plan);
      });
  const double apply_ms = apply_timer.ElapsedMillis();
  if (!applied.ok()) {
    std::printf("  FATAL: apply failed: %s\n", applied.ToString().c_str());
    return 1;
  }
  std::printf("  applied %zu retires, %zu adds, %zu disables in %.0f ms\n",
              plan.drops.size() + 2 * plan.merges.size(), plan.merges.size(),
              plan.prunes.size(), apply_ms);
  std::printf("  active rules %zu -> %zu\n", rule_base.size(),
              pipeline.rule_set().CountActive());

  auto after = Measure(pipeline, corpus);
  const size_t mismatches = CountMismatches(before.report, after.report);
  std::printf("  executed rules/item %.2f, %.0f items/s\n", after.epi,
              after.items_per_s);

  // ---- optimized + corpus-aware index ------------------------------------
  bench::Section("optimized rule set + corpus-aware re-bucketed index");
  chimera::PipelineConfig rebucket_config;
  rebucket_config.index_sample_titles = plan.index_sample;
  chimera::ChimeraPipeline rebucketed(rebucket_config);
  size_t rebucket_mismatches = 0;
  Measurement reb;
  if (rebucketed.AddRules(rule_base, "bench").ok() &&
      rebucketed
          .Mutate("optimizer",
                  [&](rules::RuleTransaction& txn) {
                    return maint::StageOptimizationPlan(txn, plan);
                  })
          .ok()) {
    reb = Measure(rebucketed, corpus);
    rebucket_mismatches = CountMismatches(before.report, reb.report);
    std::printf("  executed rules/item %.2f, %.0f items/s "
                "(candidates/item %.2f -> %.2f)\n",
                reb.epi, reb.items_per_s,
                plan.rebucket.candidates_per_item_before,
                plan.rebucket.candidates_per_item_after);
  }

  // ---- verdict ------------------------------------------------------------
  bench::Section("verdict");
  const double reduction =
      before.epi == 0.0 ? 0.0 : 1.0 - after.epi / before.epi;
  const double speedup =
      before.items_per_s == 0.0 ? 0.0 : after.items_per_s / before.items_per_s;
  std::printf("  executed-rules-per-item: %.2f -> %.2f (%.1f%% reduction; "
              "target >= 20%%: %s)\n",
              before.epi, after.epi, 100.0 * reduction,
              reduction >= 0.2 ? "met" : "NOT met");
  std::printf("  throughput: %.0f -> %.0f items/s (%.2fx)\n",
              before.items_per_s, after.items_per_s, speedup);
  std::printf("  prediction mismatches: %zu of %zu (confidence prunes "
              "touched %zu corpus items)\n",
              mismatches, corpus.size(), plan.prune_affected_items);

  std::ofstream json("BENCH_optimizer.json");
  json << "{\n"
       << "  \"benchmark\": \"bench_optimizer\",\n"
       << "  \"rules\": " << rule_base.size() << ",\n"
       << "  \"types\": " << gen.specs().size() << ",\n"
       << "  \"corpus_items\": " << corpus.size() << ",\n"
       << "  \"plan\": {\n"
       << "    \"drops\": " << plan.drops.size() << ",\n"
       << "    \"merges\": " << plan.merges.size() << ",\n"
       << "    \"prunes\": " << plan.prunes.size() << ",\n"
       << "    \"prune_affected_items\": " << plan.prune_affected_items
       << ",\n"
       << "    \"pairs_checked\": " << plan.subsumption.pairs_checked << ",\n"
       << "    \"fast_path_hits\": " << plan.subsumption.fast_path_hits
       << ",\n"
       << "    \"prefilter_refutations\": "
       << plan.subsumption.prefilter_refutations << ",\n"
       << "    \"skipped_pairs\": " << plan.subsumption.skipped_pairs << ",\n"
       << "    \"anchored_pairs\": " << plan.subsumption.anchored_pairs
       << ",\n"
       << "    \"plan_seconds\": " << plan_seconds << ",\n"
       << "    \"apply_ms\": " << apply_ms << "\n"
       << "  },\n"
       << "  \"executed_rules_per_item\": {\n"
       << "    \"before\": " << before.epi << ",\n"
       << "    \"after\": " << after.epi << ",\n"
       << "    \"after_rebucketed\": " << reb.epi << ",\n"
       << "    \"reduction\": " << reduction << ",\n"
       << "    \"target_met\": " << (reduction >= 0.2 ? "true" : "false")
       << "\n"
       << "  },\n"
       << "  \"throughput_items_per_s\": {\n"
       << "    \"before\": " << before.items_per_s << ",\n"
       << "    \"after\": " << after.items_per_s << ",\n"
       << "    \"after_rebucketed\": " << reb.items_per_s << ",\n"
       << "    \"speedup\": " << speedup << "\n"
       << "  },\n"
       << "  \"rebucket\": {\n"
       << "    \"sample_titles\": " << plan.rebucket.sample_titles << ",\n"
       << "    \"rebucketed_rules\": " << plan.rebucket.rebucketed_rules
       << ",\n"
       << "    \"candidates_per_item_before\": "
       << plan.rebucket.candidates_per_item_before << ",\n"
       << "    \"candidates_per_item_after\": "
       << plan.rebucket.candidates_per_item_after << "\n"
       << "  },\n"
       << "  \"prediction_mismatches\": " << mismatches << ",\n"
       << "  \"prediction_mismatches_rebucketed\": " << rebucket_mismatches
       << "\n"
       << "}\n";
  std::printf("\nwrote BENCH_optimizer.json\n");
  return 0;
}
