// Reproduces Figure 2 behaviourally: per-stage flow through the pipeline
// (Gate Keeper -> classifiers -> Voting Master -> Filter -> Result), the
// crowd-evaluate/analyst-patch convergence loop, and the scale-down /
// restore cycle of §2.2.

#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "src/chimera/analyst.h"
#include "src/chimera/feedback_loop.h"
#include "src/chimera/monitor.h"
#include "src/chimera/pipeline.h"
#include "src/data/catalog_generator.h"
#include "src/ml/metrics.h"

int main() {
  using namespace rulekit;
  bench::Header("bench_fig2_pipeline",
                "Figure 2 — the Chimera architecture end to end");

  data::GeneratorConfig config;
  config.seed = 1002;
  config.num_types = 20;
  data::CatalogGenerator gen(config);
  chimera::SimulatedAnalyst analyst(gen);
  crowd::CrowdSimulator crowd{crowd::CrowdConfig{}};

  // Cold-start system: rules for 4 types, no training data yet — plus two
  // sloppy rules a hurried analyst wrote, which the evaluation loop must
  // catch and patch around.
  chimera::ChimeraPipeline pipeline;
  for (size_t t = 0; t < 4; ++t) {
    (void)pipeline.AddRules(analyst.WriteRulesForType(gen.specs()[t].name),
                            "analyst");
  }
  (void)pipeline.AddRules(analyst.WriteAttributeRules(), "analyst");
  (void)pipeline.AddRules(
      {*rules::Rule::Whitelist("sloppy-1", "(glove|gloves)",
                               gen.specs()[6].name),
       *rules::Rule::Whitelist("sloppy-2", "(jeans?|denim)",
                               gen.specs()[8].name)},
      "hurried-analyst");

  // ---- stage flow ---------------------------------------------------------
  bench::Section("per-stage flow of one 5000-item batch (cold system)");
  auto warm_batch = gen.GenerateMany(bench::SmokeN(5000, 500));
  // Prime the gate-keeper memo with a few confirmed titles.
  for (size_t i = 0; i < 50; ++i) {
    pipeline.gate_keeper().Memoize(warm_batch[i].item.title,
                                   warm_batch[i].label);
  }
  std::vector<data::ProductItem> items;
  for (const auto& li : warm_batch) items.push_back(li.item);
  auto report = bench::RunBatch(pipeline, items);
  std::printf("  total               %zu\n", report.total);
  std::printf("  gate: memo-classified %zu, rejected %zu\n",
              report.gate_classified, report.gate_rejected);
  std::printf("  voting: classified  %zu\n", report.classified);
  std::printf("  filter vetoes       %zu\n", report.filtered);
  std::printf("  declined (manual)   %zu\n", report.declined);
  std::printf("  coverage            %.3f\n", report.coverage());

  // ---- convergence of the evaluation loop --------------------------------
  bench::Section("crowd-evaluate / analyst-patch loop convergence");
  chimera::FeedbackLoopConfig loop_config;
  loop_config.max_iterations = 5;
  chimera::FeedbackLoop loop(pipeline, analyst, crowd, loop_config);
  auto batch = gen.GenerateMany(bench::SmokeN(4000, 400));
  auto result = loop.RunBatch(batch);
  std::printf("  %-5s %-12s %-12s %-10s %-8s %-8s\n", "iter",
              "sampled-prec", "true-prec", "recall", "rules+", "labels+");
  for (const auto& it : result.iterations) {
    std::printf("  %-5zu %-12.3f %-12.3f %-10.3f %-8zu %-8zu\n",
                it.iteration, it.sampled_precision.estimate,
                it.true_quality.precision(), it.true_quality.recall(),
                it.rules_added, it.labels_added);
  }
  std::printf("  batch accepted: %s (threshold %.2f)\n",
              result.accepted ? "yes" : "no", loop_config.precision_threshold);
  bench::PaperNote("\"incorporate the analysts' feedback, rerun ... and so "
                   "on\" until the sample passes");

  // ---- scale-down containment ---------------------------------------------
  bench::Section("scale-down containment of a bad vendor batch (§2.2)");
  auto vendor = gen.MakeOddVendor(gen.specs().size());
  auto odd = gen.GenerateVendorBatch(3000, vendor);
  std::vector<data::ProductItem> odd_items;
  for (const auto& li : odd) odd_items.push_back(li.item);
  auto odd_report = bench::RunBatch(pipeline, odd_items);
  std::vector<ml::Observation> obs;
  for (size_t i = 0; i < odd.size(); ++i) {
    obs.push_back({odd[i].label, odd_report.predictions[i]});
  }
  auto odd_summary = ml::Summarize(obs);
  std::printf("  odd vendor batch: precision %.3f coverage %.3f\n",
              odd_summary.precision(), odd_summary.coverage());

  chimera::QualityMonitor monitor(0.92);
  chimera::BatchQuality quality;
  quality.precision = crowd::WilsonEstimate(
      odd_summary.correct, odd_summary.predicted);
  monitor.Record(quality);
  std::printf("  degradation alarm: %s\n",
              monitor.DegradationAlarm() ? "FIRED" : "quiet");

  if (monitor.DegradationAlarm()) {
    // First responder: scale down every type misbehaving on this batch.
    auto per_class = ml::PerClass(obs);
    uint64_t checkpoint = *pipeline.Checkpoint("oncall");
    std::vector<std::string> scaled;
    for (const auto& [type, metrics] : per_class) {
      if (metrics.predicted_count >= 20 && metrics.precision() < 0.9) {
        (void)pipeline.ScaleDownType(type, "oncall", "odd vendor incident");
        scaled.push_back(type);
      }
    }
    auto contained_report = bench::RunBatch(pipeline, odd_items);
    std::vector<ml::Observation> contained_obs;
    for (size_t i = 0; i < odd.size(); ++i) {
      contained_obs.push_back({odd[i].label,
                               contained_report.predictions[i]});
    }
    auto contained = ml::Summarize(contained_obs);
    std::printf("  scaled down %zu types: ", scaled.size());
    for (const auto& t : scaled) std::printf("\"%s\" ", t.c_str());
    std::printf("\n  after scale-down: precision %.3f coverage %.3f\n",
                contained.precision(), contained.coverage());
    (void)pipeline.RestoreCheckpoint(checkpoint, "oncall");
    for (const auto& t : scaled) pipeline.ScaleUpType(t);
    std::printf("  restored to checkpoint; audit log has %zu entries\n",
                pipeline.repository().audit_log().size());
  }
  std::printf("\nshape check: the loop converges to an accepted batch, and "
              "scale-down trades\ncoverage for precision exactly as §2.2 "
              "describes.\n");
  return 0;
}
