#!/usr/bin/env bash
# One-command verification gauntlet: configure, build, and ctest the
# plain tree, the ASan+UBSan tree, and the TSan tree.
#
#   scripts/check.sh                 # all three trees
#   scripts/check.sh plain           # just one (plain | asan | tsan)
#   CHECK_JOBS=4 scripts/check.sh    # override parallelism
#
# Build dirs: build/ (plain), build-asan/, build-tsan/ — the same trees
# the README documents, so incremental rebuilds stay warm.

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

run_tree() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [${name}] configure ${dir} ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

want="${1:-all}"
case "${want}" in
  all)
    run_tree plain build
    run_tree asan build-asan -DRULEKIT_SANITIZE=address
    run_tree tsan build-tsan -DRULEKIT_SANITIZE=thread
    ;;
  plain) run_tree plain build ;;
  asan)  run_tree asan build-asan -DRULEKIT_SANITIZE=address ;;
  tsan)  run_tree tsan build-tsan -DRULEKIT_SANITIZE=thread ;;
  *)
    echo "usage: $0 [all|plain|asan|tsan]" >&2
    exit 2
    ;;
esac

echo "=== all requested trees passed ==="
