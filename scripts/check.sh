#!/usr/bin/env bash
# One-command verification gauntlet: configure, build, and ctest the
# plain tree, the ASan+UBSan tree, and the TSan tree.
#
#   scripts/check.sh                     # all three trees
#   scripts/check.sh plain               # just one (plain | asan | tsan)
#   scripts/check.sh --labels stress     # only tests with a matching ctest
#                                        # label (unit | stress | storage |
#                                        # tenant | serving | replication |
#                                        # optimizer | drift)
#   scripts/check.sh tsan --labels 'stress|storage'
#   scripts/check.sh tsan --labels 'replication|stress'  # the replication
#                                        # stream + concurrency tiers under
#                                        # TSan (the races that matter most)
#   scripts/check.sh tsan --labels optimizer  # optimize-while-serving race
#                                        # check (the concurrency test is
#                                        # dual-labeled optimizer+stress)
#   scripts/check.sh tsan --labels drift # the self-healing loop under TSan
#                                        # (drift_stress_test is dual-labeled
#                                        # drift+stress)
#   scripts/check.sh --bench-smoke       # build the plain tree and run every
#                                        # bench binary once with a tiny
#                                        # iteration budget (RULEKIT_BENCH_
#                                        # SMOKE=1) — a did-it-run gate, not
#                                        # a measurement
#   scripts/check.sh --timeout 120      # per-test seconds, overriding the
#                                        # TIMEOUT each test registers
#   CHECK_JOBS=4 scripts/check.sh        # override parallelism
#
# Every test carries a cmake-registered TIMEOUT (tests/CMakeLists.txt),
# so a deadlocked stress test fails its own entry instead of hanging the
# whole run; --timeout tightens or loosens that per invocation.
#
# Build dirs: build/ (plain), build-asan/, build-tsan/ — the same trees
# the README documents, so incremental rebuilds stay warm.

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

labels=""
timeout=""
want=""
bench_smoke=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --labels)   labels="${2:?--labels needs a ctest -L regex}"; shift 2 ;;
    --labels=*) labels="${1#*=}"; shift ;;
    --timeout)   timeout="${2:?--timeout needs seconds}"; shift 2 ;;
    --timeout=*) timeout="${1#*=}"; shift ;;
    --bench-smoke) bench_smoke=1; shift ;;
    all|plain|asan|tsan)
      if [[ -n "${want}" ]]; then
        echo "error: more than one tree selected ('${want}', '$1')" >&2
        exit 2
      fi
      want="$1"; shift ;;
    *)
      echo "usage: $0 [all|plain|asan|tsan] [--labels <regex>] [--timeout <sec>] [--bench-smoke]" >&2
      exit 2 ;;
  esac
done
want="${want:-all}"

ctest_flags=(--output-on-failure -j "${jobs}")
if [[ -n "${labels}" ]]; then
  ctest_flags+=(-L "${labels}")
fi
if [[ -n "${timeout}" ]]; then
  ctest_flags+=(--timeout "${timeout}")
fi

run_tree() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [${name}] configure ${dir} ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" "${ctest_flags[@]}"
}

run_bench_smoke() {
  echo "=== [bench-smoke] configure build ==="
  cmake -B build -S .
  echo "=== [bench-smoke] build benches ==="
  cmake --build build -j "${jobs}" --target $(
    sed -n 's/^rulekit_add_bench(\([a-z0-9_]*\).*/\1/p' bench/CMakeLists.txt)
  echo "=== [bench-smoke] run each bench with a token budget ==="
  local failed=0
  for bin in build/bench/bench_*; do
    [[ -x "${bin}" && ! -d "${bin}" ]] || continue
    echo "--- ${bin##*/} ---"
    if ! (cd build/bench && RULEKIT_BENCH_SMOKE=1 "./${bin##*/}" \
            > "/tmp/${bin##*/}.smoke.log" 2>&1); then
      echo "FAILED: ${bin##*/} (log: /tmp/${bin##*/}.smoke.log)" >&2
      tail -20 "/tmp/${bin##*/}.smoke.log" >&2
      failed=1
    fi
  done
  [[ "${failed}" -eq 0 ]] || exit 1
  echo "=== all benches ran clean in smoke mode ==="
}

if [[ "${bench_smoke}" -eq 1 ]]; then
  run_bench_smoke
  exit 0
fi

case "${want}" in
  all)
    run_tree plain build
    run_tree asan build-asan -DRULEKIT_SANITIZE=address
    run_tree tsan build-tsan -DRULEKIT_SANITIZE=thread
    ;;
  plain) run_tree plain build ;;
  asan)  run_tree asan build-asan -DRULEKIT_SANITIZE=address ;;
  tsan)  run_tree tsan build-tsan -DRULEKIT_SANITIZE=thread ;;
esac

echo "=== all requested trees passed ==="
